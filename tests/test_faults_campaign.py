"""Campaign layer: schedule serialization, strategy generators, the
shrinker against a real (deliberately unsound) divergence, the trial
classifier, artifacts, and the CLI."""

import json

import pytest

from repro.faults import (
    CampaignSpec,
    FaultSchedule,
    FlipSpec,
    TearSpec,
    profile_kernel,
    run_campaign,
    run_trial,
    shrink_schedule,
    smoke_spec,
    write_artifact,
)
from repro.faults.__main__ import main as faults_main
from repro.faults.campaign import _kernel_context, build_schedules
from repro.faults import strategies as strat
from repro.harness.report import campaign_result, load_campaign

#: DESIGN.md 4b: skipping checkpoint-store logging is unsound; this
#: config provokes real divergences the shrinker must minimize.
UNSOUND = {"log_ckpt_stores": False, "drain_per_step": 5.0}


@pytest.fixture(scope="module")
def counter_profile():
    module, entry, args, _, _ = _kernel_context("counter")
    return module, entry, args, profile_kernel(module, "counter", entry, args)


class TestScheduleSerialization:
    def test_round_trip_full(self):
        s = FaultSchedule(
            cuts=[57, 4, 0],
            tear=TearSpec(9),
            flip=FlipSpec("ckpt", 3, 41),
            config={"pb_size": 8},
            strategy="random",
            seed=77,
        )
        again = FaultSchedule.from_json(s.to_json())
        assert again == s

    def test_round_trip_minimal(self):
        s = FaultSchedule(cuts=[5])
        assert FaultSchedule.from_json(s.to_json()) == s
        assert s.describe() == "cuts=5"

    def test_provenance_in_artifact_record(self):
        # Satellite: every divergence artifact carries the campaign seed
        # and the full schedule, reproducible from one CLI line.
        s = FaultSchedule(cuts=[3], strategy="corruption", seed=42)
        record = run_trial("counter", s)
        data = record.to_dict()
        assert data["schedule"]["seed"] == 42
        assert data["schedule"]["strategy"] == "corruption"
        assert "python -m repro.faults repro --kernel counter" in data["repro"]
        json.dumps(data)  # must be JSON-serializable as-is

    def test_nested_cuts_semantics(self):
        assert FaultSchedule(cuts=[5, 2]).nested_cuts == [2]
        assert FaultSchedule(cuts=[5, 2], tear=TearSpec(1)).nested_cuts == [5, 2]
        assert FaultSchedule(cuts=[5], tear=TearSpec(1)).crash_count == 2


class TestStrategies:
    def test_single_sweep_includes_final_event(self, counter_profile):
        _, _, _, profile = counter_profile
        points = [s.cuts[0] for s in strat.single_cut_sweep(profile, 100)]
        assert profile.total_events in points

    def test_torn_sweep_covers_last_apply(self, counter_profile):
        _, _, _, profile = counter_profile
        idxs = [s.tear.apply_index for s in strat.torn_persist_sweep(profile, 100)]
        assert profile.total_applies in idxs

    def test_nested_sweep_includes_recovery_cut(self, counter_profile):
        module, entry, args, profile = counter_profile
        schedules = strat.nested_crash_sweep(
            module, profile, entry, args, stride=200, stride2=50, k=2
        )
        assert schedules
        assert all(len(s.cuts) == 2 for s in schedules)
        # Offset 0 (cut during recovery itself) is always attacked.
        assert any(s.cuts[1] == 0 for s in schedules)

    def test_nested_sweep_depth_k3(self, counter_profile):
        module, entry, args, profile = counter_profile
        schedules = strat.nested_crash_sweep(
            module, profile, entry, args, stride=300, stride2=100, k=3, seed=5
        )
        assert schedules and all(len(s.cuts) == 3 for s in schedules)

    def test_seeded_strategies_deterministic(self, counter_profile):
        _, _, _, profile = counter_profile
        a = strat.corruption_campaign(profile, 10, seed=3)
        b = strat.corruption_campaign(profile, 10, seed=3)
        c = strat.corruption_campaign(profile, 10, seed=4)
        assert a == b
        assert a != c
        assert strat.random_mix(profile, 10, 9) == strat.random_mix(profile, 10, 9)

    def test_boundary_sweep_squeezes_config(self, counter_profile):
        module, entry, args, _ = counter_profile
        schedules = strat.boundary_state_sweep(module, "counter", entry, args)
        assert schedules
        assert all(s.config == strat.BOUNDARY_CONFIG for s in schedules)
        assert any(len(s.cuts) == 2 for s in schedules)  # nested pairs too


class TestShrinker:
    def test_shrinks_real_divergence_to_minimal(self):
        # A 3-crash schedule under the known-unsound config diverges;
        # the shrinker must reduce it while preserving the failure.
        schedule = FaultSchedule(cuts=[96, 7, 3], config=dict(UNSOUND))
        assert run_trial("counter", schedule).is_failure

        evals = [0]

        def still_fails(cand):
            evals[0] += 1
            return run_trial("counter", cand).is_failure

        shrunk = shrink_schedule(schedule, still_fails, max_evals=120)
        assert run_trial("counter", shrunk).is_failure
        assert len(shrunk.cuts) < 3  # nested cuts were not needed
        assert shrunk.config  # the unsound config IS needed; kept
        assert evals[0] <= 120

    def test_respects_eval_budget(self):
        calls = [0]

        def never_fails(_cand):
            calls[0] += 1
            return False

        s = FaultSchedule(cuts=[50, 10, 5], flip=FlipSpec("log", 1, 2))
        out = shrink_schedule(s, never_fails, max_evals=7)
        assert out == s  # nothing accepted
        assert calls[0] <= 8


class TestTrialsAndCampaign:
    def test_ok_and_completed_classification(self):
        assert run_trial("counter", FaultSchedule(cuts=[40])).status == "ok"
        assert run_trial("counter", FaultSchedule(cuts=[10_000_000])).status == "completed"

    def test_unsound_config_is_failure(self):
        # With checkpoint-store logging disabled, a reverted image can
        # hold stale checkpoint slots: either RS validation trips
        # ("error") or the resumed run silently diverges ("divergent").
        # Both are campaign failures; neither is ever reported "ok".
        record = run_trial("counter", FaultSchedule(cuts=[95], config=dict(UNSOUND)))
        assert record.status in ("divergent", "error")
        assert record.is_failure

    def test_campaign_artifact_and_report(self, tmp_path):
        spec = CampaignSpec(
            kernels=["counter"],
            strategies=["torn", "corruption"],
            seed=2,
            torn_stride=40,
            corruption_trials=6,
        )
        artifact = run_campaign(spec, jobs=1)
        assert artifact["meta"]["seed"] == 2
        assert artifact["totals"]["trials"] == sum(
            cell["trials"]
            for cells in artifact["per_kernel"].values()
            for cell in cells.values()
        )
        assert artifact["totals"]["divergent"] == 0
        assert artifact["totals"]["error"] == 0
        assert artifact["divergences"] == []

        path = tmp_path / "campaign.json"
        write_artifact(artifact, str(path))
        loaded = load_campaign(str(path))
        assert loaded["totals"] == artifact["totals"]

        result = campaign_result(loaded)
        assert "all consistent-or-degraded" in result.description
        assert result.summary["divergent"] == 0
        table = result.format_table()
        assert "counter" in table and "torn" in table

    def test_divergent_campaign_shrinks_and_reports(self):
        # Inject the unsound schedule through the campaign plumbing by
        # running the shrink path on a handcrafted failure record.
        record = run_trial("counter", FaultSchedule(cuts=[96, 7], config=dict(UNSOUND)))
        assert record.is_failure
        data = record.to_dict()
        assert data["status"] in ("divergent", "error")
        assert "--schedule" in data["repro"]

    def test_build_schedules_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            build_schedules(CampaignSpec(kernels=["counter"], strategies=["bogus"]))

    def test_smoke_spec_is_bounded(self):
        spec = smoke_spec(seed=9)
        assert spec.seed == 9
        assert "single" not in spec.strategies  # covered by nested k=2 anyway
        assert len(spec.kernels) <= 6


class TestCLI:
    def test_repro_ok_exit_zero(self, capsys):
        rc = faults_main(["repro", "--kernel", "counter", "--schedule", '{"cuts": [40]}'])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_repro_failure_exit_one(self, capsys):
        schedule = FaultSchedule(cuts=[95], config=dict(UNSOUND))
        rc = faults_main(
            ["repro", "--kernel", "counter", "--schedule", schedule.to_json()]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "DIVERGENT" in out or "ERROR" in out

    def test_campaign_cli_pass(self, capsys, tmp_path):
        out = tmp_path / "art.json"
        rc = faults_main(
            [
                "--kernels", "counter",
                "--strategies", "torn",
                "--torn-stride", "60",
                "--out", str(out),
            ]
        )
        text = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in text and "0 silent divergences" in text
        assert out.exists()
        assert load_campaign(str(out))["totals"]["divergent"] == 0
