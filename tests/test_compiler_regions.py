"""Region formation: initial boundaries and antidependence cutting."""

import pytest

from repro.compiler.regions import (
    cut_antidependences,
    find_antidependent_stores,
    insert_initial_boundaries,
)
from repro.ir.builder import IRBuilder
from repro.ir.function import Module
from repro.ir.instructions import Boundary, Call, Store
from repro.ir.values import Reg


def boundaries_of(fn, kind=None):
    return [
        i
        for _, i in fn.instructions()
        if isinstance(i, Boundary) and (kind is None or i.kind == kind)
    ]


class TestInitialBoundaries:
    def test_entry_boundary_inserted_first(self, straightline):
        fn = straightline.get("main")
        insert_initial_boundaries(fn)
        assert isinstance(fn.entry.instrs[0], Boundary)
        assert fn.entry.instrs[0].kind == "entry"

    def test_boundaries_surround_calls(self, call_chain):
        fn = call_chain.get("main")
        insert_initial_boundaries(fn)
        instrs = fn.entry.instrs
        call_idx = next(i for i, x in enumerate(instrs) if isinstance(x, Call))
        assert isinstance(instrs[call_idx - 1], Boundary)
        assert instrs[call_idx - 1].kind == "call"
        assert isinstance(instrs[call_idx + 1], Boundary)
        assert instrs[call_idx + 1].kind == "post_call"

    def test_boundary_at_loop_header(self, rmw_loop):
        fn = rmw_loop.get("main")
        insert_initial_boundaries(fn)
        assert isinstance(fn.blocks["loop"].instrs[0], Boundary)
        assert fn.blocks["loop"].instrs[0].kind == "loop"

    def test_loop_boundaries_can_be_disabled(self, rmw_loop):
        fn = rmw_loop.get("main")
        insert_initial_boundaries(fn, loop_boundaries=False)
        assert not isinstance(fn.blocks["loop"].instrs[0], Boundary)

    def test_sync_boundaries_around_atomics(self):
        b = IRBuilder(Module("m"))
        fn = b.function("main", [])
        p = b.alloca(8)
        b.atomic("add", p, 1)
        b.ret()
        insert_initial_boundaries(fn)
        kinds = [type(i).__name__ for i in fn.entry.instrs]
        sync_positions = [
            i for i, x in enumerate(fn.entry.instrs)
            if isinstance(x, Boundary) and x.kind == "sync"
        ]
        assert len(sync_positions) == 2

    def test_idempotent_reapplication(self, straightline):
        fn = straightline.get("main")
        n1 = insert_initial_boundaries(fn)
        n2 = insert_initial_boundaries(fn)
        assert n1 > 0 and n2 == 0


class TestAntidependence:
    def test_war_pair_detected(self, straightline):
        fn = straightline.get("main")
        insert_initial_boundaries(fn)
        flagged = find_antidependent_stores(fn)
        assert len(flagged) == 1  # the store of s back to p+0

    def test_cut_resolves_all(self, straightline):
        fn = straightline.get("main")
        insert_initial_boundaries(fn)
        cuts = cut_antidependences(fn)
        assert cuts == 1
        assert find_antidependent_stores(fn) == []

    def test_cut_goes_directly_before_store(self, straightline):
        fn = straightline.get("main")
        insert_initial_boundaries(fn)
        cut_antidependences(fn)
        instrs = fn.entry.instrs
        for i, instr in enumerate(instrs):
            if isinstance(instr, Boundary) and instr.kind == "antidep":
                assert isinstance(instrs[i + 1], Store)
                return
        pytest.fail("no antidep boundary found")

    def test_loop_rmw_cut(self, rmw_loop):
        fn = rmw_loop.get("main")
        insert_initial_boundaries(fn)
        cuts = cut_antidependences(fn)
        assert cuts >= 1
        assert find_antidependent_stores(fn) == []

    def test_boundary_clears_exposure(self):
        b = IRBuilder(Module("m"))
        fn = b.function("main", [])
        p = b.alloca(8)
        x = b.load(p)
        b.boundary("manual")  # manually cut: no WAR remains
        b.store(x, p)
        b.ret()
        assert find_antidependent_stores(fn) == []

    def test_call_clears_exposure(self):
        b = IRBuilder(Module("m"))
        b.function("leaf", [])
        b.ret()
        fn = b.function("main", [])
        p = b.alloca(8)
        x = b.load(p)
        b.call("leaf", [])
        b.store(x, p)
        b.ret()
        # calls are region boundaries: exposure cleared
        assert find_antidependent_stores(fn) == []

    def test_disjoint_accesses_not_flagged(self):
        b = IRBuilder(Module("m"))
        fn = b.function("main", [])
        p = b.alloca(16)
        x = b.load(p, 0)
        b.store(x, p, 8)  # different word: no WAR
        b.ret()
        assert find_antidependent_stores(fn) == []

    def test_cross_block_war_detected(self):
        b = IRBuilder(Module("m"))
        fn = b.function("main", ["c"])
        p = b.alloca(8, Reg("p"))
        x = b.load(Reg("p"), 0, Reg("x"))
        t = b.add_block("t")
        f = b.add_block("f")
        b.cbr(Reg("c"), t, f)
        b.set_block(t)
        b.store(Reg("x"), Reg("p"))  # WAR reached through the branch
        b.ret()
        b.set_block(f)
        b.ret()
        flagged = find_antidependent_stores(fn)
        assert len(flagged) == 1

    def test_store_then_load_is_fine(self):
        b = IRBuilder(Module("m"))
        fn = b.function("main", [])
        p = b.alloca(8)
        b.store(1, p)
        x = b.load(p)  # RAW: allowed within a region
        b.out(x)
        b.ret()
        assert find_antidependent_stores(fn) == []
