"""Liveness and reaching-definitions tests."""

from repro.analysis.liveness import Liveness
from repro.analysis.reaching import ReachingDefs
from repro.ir.builder import IRBuilder
from repro.ir.function import Module
from repro.ir.instructions import Checkpoint
from repro.ir.values import Reg


def linear_fn():
    b = IRBuilder(Module("m"))
    fn = b.function("f", ["a"])
    x = b.add(Reg("a"), 1, Reg("x"))
    y = b.mul(Reg("x"), 2, Reg("y"))
    b.ret(Reg("y"))
    return fn


def loop_counter_fn():
    b = IRBuilder(Module("m"))
    fn = b.function("f", ["n"])
    b.const(0, Reg("i"))
    loop = b.add_block("loop")
    body = b.add_block("body")
    done = b.add_block("done")
    b.br(loop)
    b.set_block(loop)
    c = b.cmp("slt", Reg("i"), Reg("n"))
    b.cbr(c, body, done)
    b.set_block(body)
    b.add(Reg("i"), 1, Reg("i"))
    b.br(loop)
    b.set_block(done)
    b.ret(Reg("i"))
    return fn


class TestLiveness:
    def test_param_live_at_entry(self):
        fn = linear_fn()
        lv = Liveness(fn)
        assert Reg("a") in lv.live_before("entry", 0)

    def test_dead_after_last_use(self):
        fn = linear_fn()
        lv = Liveness(fn)
        # after x is consumed by the mul, only y matters
        assert Reg("x") not in lv.live_before("entry", 2)
        assert Reg("y") in lv.live_before("entry", 2)

    def test_loop_carried_register_live_at_header(self):
        fn = loop_counter_fn()
        lv = Liveness(fn)
        assert Reg("i") in lv.live_in["loop"]
        assert Reg("n") in lv.live_in["loop"]

    def test_live_out_of_body_feeds_header(self):
        fn = loop_counter_fn()
        lv = Liveness(fn)
        assert Reg("i") in lv.live_out["body"]

    def test_live_sets_in_block_matches_live_before(self):
        fn = loop_counter_fn()
        lv = Liveness(fn)
        sets = lv.live_sets_in_block("body")
        for i in range(len(sets)):
            assert sets[i] == lv.live_before("body", i)

    def test_ignore_ckpt_drops_ckpt_only_uses(self):
        b = IRBuilder(Module("m"))
        fn = b.function("f", [])
        b.const(7, Reg("dead"))
        fn.add_instr(fn.blocks["entry"], Checkpoint(Reg("dead")))
        b.ret()
        normal = Liveness(fn)
        semantic = Liveness(fn, ignore_ckpt=True)
        assert Reg("dead") in normal.live_before("entry", 1)
        assert Reg("dead") not in semantic.live_before("entry", 1)


class TestReachingDefs:
    def test_param_pseudo_def(self):
        fn = linear_fn()
        rd = ReachingDefs(fn)
        assert rd.defs_before("entry", 0, Reg("a")) == frozenset({("param", "a")})

    def test_def_replaces_previous(self):
        fn = linear_fn()
        rd = ReachingDefs(fn)
        defs = rd.defs_before("entry", 2, Reg("x"))
        assert len(defs) == 1
        (d,) = defs
        assert isinstance(d, int)

    def test_loop_merges_two_defs(self):
        fn = loop_counter_fn()
        rd = ReachingDefs(fn)
        defs = rd.defs_before("loop", 0, Reg("i"))
        assert len(defs) == 2  # const in entry + add in body

    def test_inside_body_single_def_after_redefinition(self):
        fn = loop_counter_fn()
        rd = ReachingDefs(fn)
        defs = rd.defs_before("body", 1, Reg("i"))
        assert len(defs) == 1

    def test_env_before_contains_all_regs(self):
        fn = loop_counter_fn()
        rd = ReachingDefs(fn)
        env = rd.env_before("done", 0)
        assert Reg("i") in env and Reg("n") in env
