"""Multi-threaded recovery (Section VIII): DRF threads recover
independently from their own recovery points."""

import pytest

from repro.compiler import compile_module
from repro.ir.builder import IRBuilder
from repro.ir.function import Module
from repro.ir.values import Reg
from repro.recovery import PersistenceConfig
from repro.recovery.multithread import (
    ThreadSpec,
    ThreadedExecution,
    check_threaded_crash_consistency,
)

SHARED_COUNTER = 0x0880_0000
ARRAYS = 0x0890_0000


def build_drf_module(iters: int = 6) -> Module:
    """Two-thread DRF workload: each thread atomically bumps a shared
    counter and fills its own (disjoint) array slice.  Confluent: the
    final state is schedule-independent."""
    module = Module("drf")
    b = IRBuilder(module)
    b.function("worker", ["tid"])
    base = b.shl(Reg("tid"), 10)
    arr = b.add(ARRAYS, base, Reg("arr"))
    ctr = b.const(SHARED_COUNTER, Reg("ctr"))
    b.const(0, Reg("i"))
    loop = b.add_block("loop")
    body = b.add_block("body")
    fin = b.add_block("fin")
    b.br(loop)
    b.set_block(loop)
    c = b.cmp("slt", Reg("i"), iters)
    b.cbr(c, body, fin)
    b.set_block(body)
    b.atomic("add", Reg("ctr"), 1)          # shared: synchronized
    v = b.mul(Reg("i"), 11)
    off = b.shl(Reg("i"), 3)
    slot = b.add(Reg("arr"), off)
    old = b.load(slot)
    b.store(b.add(old, v), slot)            # private: no races
    b.add(Reg("i"), 1, Reg("i"))
    b.br(loop)
    b.set_block(fin)
    # out the thread's array checksum (order-independent per thread)
    b.const(0, Reg("j"))
    b.const(0, Reg("sum"))
    sl = b.add_block("sl")
    sb = b.add_block("sb")
    done = b.add_block("done")
    b.br(sl)
    b.set_block(sl)
    cs = b.cmp("slt", Reg("j"), iters)
    b.cbr(cs, sb, done)
    b.set_block(sb)
    x = b.load(b.add(Reg("arr"), b.shl(Reg("j"), 3)))
    b.add(Reg("sum"), x, Reg("sum"))
    b.add(Reg("j"), 1, Reg("j"))
    b.br(sl)
    b.set_block(done)
    b.out(Reg("sum"))
    b.ret(Reg("sum"))
    return module


@pytest.fixture
def drf():
    module = build_drf_module()
    compile_module(module)
    return module


THREADS = [ThreadSpec("worker", (0,)), ThreadSpec("worker", (1,))]


class TestExecution:
    def test_two_threads_complete(self, drf):
        run = ThreadedExecution(drf, THREADS).run()
        assert run.completed
        expected = sum(i * 11 for i in range(6))
        assert run.outputs == [[expected], [expected]]

    def test_shared_counter_sums_both_threads(self, drf):
        run = ThreadedExecution(drf, THREADS).run()
        assert run.memory.load(SHARED_COUNTER) == 12  # 2 threads x 6

    def test_private_slices_disjoint(self, drf):
        run = ThreadedExecution(drf, THREADS).run()
        for tid in range(2):
            for i in range(6):
                assert run.memory.load(ARRAYS + (tid << 10) + i * 8) == i * 11

    def test_three_threads(self):
        module = build_drf_module()
        compile_module(module)
        threads = [ThreadSpec("worker", (t,)) for t in range(3)]
        run = ThreadedExecution(module, threads).run()
        assert run.completed
        assert run.memory.load(SHARED_COUNTER) == 18


class TestFailureRecovery:
    def test_interrupted_run_reports_incomplete(self, drf):
        run = ThreadedExecution(drf, THREADS).run(fail_after_event=30)
        assert not run.completed

    def test_recovery_reproduces_outputs(self, drf):
        execu = ThreadedExecution(drf, THREADS)
        ref = execu.run()
        for point in (10, 50, 150, 300):
            interrupted = execu.run(fail_after_event=point)
            if interrupted.completed:
                continue
            resumed = execu.recover_and_resume(interrupted.model)
            assert resumed.outputs == ref.outputs, f"point {point}"

    def test_shared_counter_consistent_after_recovery(self, drf):
        execu = ThreadedExecution(drf, THREADS)
        interrupted = execu.run(fail_after_event=120)
        assert not interrupted.completed
        resumed = execu.recover_and_resume(interrupted.model)
        assert resumed.memory.load(SHARED_COUNTER) == 12

    def test_full_sweep_default_config(self, drf):
        checked, divergences = check_threaded_crash_consistency(
            drf, THREADS, stride=13
        )
        assert checked > 10
        assert divergences == [], divergences[:3]

    def test_full_sweep_skewed_mcs(self, drf):
        config = PersistenceConfig(drain_per_step=0.2, mc_skew=(0, 5))
        checked, divergences = check_threaded_crash_consistency(
            drf, THREADS, stride=17, config=config
        )
        assert checked > 5
        assert divergences == [], divergences[:3]
