"""Machine configuration presets and unit conversions."""

import pytest

from repro.arch.config import (
    CXL_DEVICES,
    CXL_DRAM,
    MachineConfig,
    NVM_TECHS,
    machine_with_cache_levels,
    skylake_machine,
)


class TestDefaults:
    def test_paper_default_machine(self):
        m = skylake_machine()
        assert m.caches[0].size_bytes == 64 << 10  # 64KB L1D
        assert m.caches[1].hit_latency == 44       # 44-cycle shared L2
        assert m.dram_cache.size_bytes == 4 << 30  # 4GB DRAM cache
        assert m.nvm.read_ns == 175.0 and m.nvm.write_ns == 90.0
        assert m.mc_count == 2
        assert m.wpq_entries == 24
        assert m.pb_entries == 50 and m.rbt_entries == 16
        assert m.persist_lat_ns == 20.0 and m.persist_bw_gbps == 4.0

    def test_scaled_keeps_latencies(self):
        full = skylake_machine()
        scaled = skylake_machine(scaled=True)
        assert scaled.caches[0].hit_latency == full.caches[0].hit_latency
        assert scaled.caches[1].hit_latency == full.caches[1].hit_latency
        assert scaled.caches[1].size_bytes < full.caches[1].size_bytes

    def test_overrides(self):
        m = skylake_machine(rbt_entries=32, persist_bw_gbps=10.0)
        assert m.rbt_entries == 32 and m.persist_bw_gbps == 10.0

    def test_hashable_for_caching(self):
        assert skylake_machine() == skylake_machine()
        assert {skylake_machine(): 1}[skylake_machine()] == 1


class TestConversions:
    def test_ns_to_cycles(self):
        m = skylake_machine()
        assert m.ns(10.0) == 20.0  # 2 GHz

    def test_path_cycles_per_byte(self):
        m = skylake_machine()
        # 4GB/s at 2GHz = 2 bytes/cycle
        assert m.path_cycles_per_byte() == pytest.approx(0.5)

    def test_nvm_write_cycles_split_across_mcs(self):
        m = skylake_machine()
        per_mc = m.nvm.write_bw_gbps / m.mc_count
        assert m.nvm_write_cycles_per_byte() == pytest.approx(m.freq_ghz / per_mc)

    def test_mc_interleave(self):
        m = skylake_machine()
        assert m.mc_of(0) == 0
        assert m.mc_of(m.interleave) == 1
        assert m.mc_of(2 * m.interleave) == 0


class TestCacheDepthPresets:
    @pytest.mark.parametrize("levels", [2, 3, 4])
    def test_sram_only_levels(self, levels):
        m = machine_with_cache_levels(levels)
        assert len(m.caches) == levels
        assert m.dram_cache is None

    def test_five_levels_adds_dram(self):
        m = machine_with_cache_levels(5)
        assert len(m.caches) == 4
        assert m.dram_cache is not None

    def test_sizes_monotone(self):
        for scaled in (False, True):
            m = machine_with_cache_levels(4, scaled=scaled)
            sizes = [c.size_bytes for c in m.caches]
            assert sizes == sorted(sizes)

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            machine_with_cache_levels(7)

    def test_nvm_override(self):
        m = machine_with_cache_levels(3, nvm=CXL_DRAM)
        assert m.nvm.name == "CXL-DRAM"


class TestNVMCatalogs:
    def test_three_nvm_technologies(self):
        assert set(NVM_TECHS) == {"PMEM", "STTRAM", "ReRAM"}
        # ordering: PMEM slowest reads, ReRAM fastest
        assert NVM_TECHS["PMEM"].read_ns > NVM_TECHS["STTRAM"].read_ns
        assert NVM_TECHS["STTRAM"].read_ns > NVM_TECHS["ReRAM"].read_ns

    def test_table_one_devices(self):
        assert set(CXL_DEVICES) == {"CXL-A", "CXL-B", "CXL-C", "CXL-D"}
        a = CXL_DEVICES["CXL-A"]
        assert (a.read_ns, a.write_ns, a.write_bw_gbps) == (158.0, 120.0, 38.4)
        d = CXL_DEVICES["CXL-D"]
        assert d.write_bw_gbps == 2.3  # Optane-class write bandwidth

    def test_link_latency_adds(self):
        from dataclasses import replace

        dev = replace(CXL_DEVICES["CXL-A"], link_ns=70.0)
        assert dev.total_read_ns == 228.0
        assert dev.total_write_ns == 190.0
