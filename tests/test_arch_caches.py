"""Cache models: LRU, dirty eviction, direct-mapped DRAM, priming."""

from repro.arch.caches import CacheHierarchy, DirectMappedCache, SetAssocCache
from repro.arch.config import CacheConfig, DRAMCacheConfig


def tiny_cache(ways=2, sets=2):
    return SetAssocCache(
        CacheConfig("T", size_bytes=64 * ways * sets, ways=ways, hit_latency=4)
    )


class TestSetAssoc:
    def test_miss_then_hit(self):
        c = tiny_cache()
        hit, _ = c.access(0, False)
        assert not hit
        hit, _ = c.access(0, False)
        assert hit

    def test_lru_eviction(self):
        c = tiny_cache(ways=2, sets=1)
        c.access(0, False)
        c.access(1, False)
        c.access(0, False)  # 0 is now MRU
        _, evicted = c.access(2, False)  # evicts line 1 (LRU)
        assert evicted is not None and evicted[0] == 1

    def test_dirty_bit_on_eviction(self):
        c = tiny_cache(ways=1, sets=1)
        c.access(0, True)  # write: dirty
        _, evicted = c.access(1, False)
        assert evicted == (0, True)

    def test_clean_eviction(self):
        c = tiny_cache(ways=1, sets=1)
        c.access(0, False)
        _, evicted = c.access(1, False)
        assert evicted == (0, False)

    def test_write_marks_existing_line_dirty(self):
        c = tiny_cache(ways=1, sets=1)
        c.access(0, False)
        c.access(0, True)
        _, evicted = c.access(1, False)
        assert evicted == (0, True)

    def test_miss_rate(self):
        c = tiny_cache()
        c.access(0, False)
        c.access(0, False)
        assert c.miss_rate == 0.5

    def test_invalidate(self):
        c = tiny_cache()
        c.access(0, False)
        c.invalidate(0)
        hit, _ = c.access(0, False)
        assert not hit


class TestDirectMapped:
    def test_conflict_eviction(self):
        d = DirectMappedCache(DRAMCacheConfig(size_bytes=2 * 64, hit_latency=1))
        d.access(0, True)
        _, evicted = d.access(2, False)  # same index (2 lines)
        assert evicted == (0, True)

    def test_hit_after_fill(self):
        d = DirectMappedCache(DRAMCacheConfig(size_bytes=2 * 64, hit_latency=1))
        d.access(5, False)
        hit, _ = d.access(5, False)
        assert hit


class TestHierarchy:
    def _hier(self):
        return CacheHierarchy(
            (
                CacheConfig("L1", 2 * 64, 1, hit_latency=4),
                CacheConfig("L2", 8 * 64, 2, hit_latency=14),
            ),
            DRAMCacheConfig(size_bytes=64 * 64, hit_latency=100),
        )

    def test_l1_hit_latency(self):
        h = self._hier()
        h.access(0, False)
        lat, to_nvm, _, _ = h.access(0, False)
        assert lat == 4 and not to_nvm

    def test_cold_miss_reaches_nvm(self):
        h = self._hier()
        lat, to_nvm, _, _ = h.access(0, False)
        assert to_nvm and lat == 14 + 100  # latencies are cumulative per level

    def test_l1_dirty_eviction_reported(self):
        h = self._hier()
        h.access(0 * 64, True)
        h.access(2 * 64, False)  # same L1 set (2 lines, direct in L1)
        _, _, l1_ev, _ = h.access(4 * 64, False)
        assert l1_ev is not None or h.levels[0].misses >= 2

    def test_prime_makes_ranges_resident(self):
        h = self._hier()
        h.prime([(0, 2 * 64)])  # fits L1
        lat, to_nvm, _, _ = h.access(0, False)
        assert lat == 4 and not to_nvm

    def test_prime_respects_capacity(self):
        h = self._hier()
        h.prime([(0, 2 * 64), (0x10000, 6 * 64)])  # second range only fits L2+
        lat, to_nvm, _, _ = h.access(0x10000, False)
        assert not to_nvm and lat == 14  # cumulative L2 latency

    def test_prime_dram_always(self):
        h = self._hier()
        h.prime([(0x20000, 32 * 64)])  # too big for L2, fits DRAM
        lat, to_nvm, _, _ = h.access(0x20000, False)
        assert not to_nvm and lat == 14 + 100

    def test_no_dram_hierarchy(self):
        h = CacheHierarchy(
            (CacheConfig("L1", 2 * 64, 1, hit_latency=4),), None
        )
        _, to_nvm, _, _ = h.access(0, False)
        assert to_nvm
