"""Printer/parser round-trips and parse errors."""

import pytest

from repro.ir.instructions import BinOp, Boundary, Checkpoint, Load, Store
from repro.ir.interpreter import Interpreter
from repro.ir.parser import ParseError, parse_module
from repro.ir.printer import print_instr, print_module
from repro.ir.values import Imm, Reg
from tests.conftest import build_call_chain, build_rmw_loop, build_straightline


class TestPrintInstr:
    def test_binop(self):
        assert print_instr(BinOp("add", Reg("d"), Reg("a"), Imm(3))) == "%d = add %a, 3"

    def test_load_with_offset(self):
        assert print_instr(Load(Reg("d"), Reg("p"), 16)) == "%d = load [%p+16]"

    def test_load_negative_offset(self):
        assert print_instr(Load(Reg("d"), Reg("p"), -8)) == "%d = load [%p-8]"

    def test_store(self):
        assert print_instr(Store(Imm(7), Reg("p"))) == "store 7, [%p]"

    def test_boundary_and_ckpt(self):
        assert print_instr(Boundary("loop")) == "boundary loop"
        assert print_instr(Checkpoint(Reg("r3"))) == "ckpt %r3"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [build_rmw_loop, build_straightline, build_call_chain]
    )
    def test_module_roundtrips_and_runs_identically(self, factory):
        module = factory()
        reparsed = parse_module(print_module(module))
        out1, _ = Interpreter(module).run_trace()
        out2, _ = Interpreter(reparsed).run_trace()
        assert out1.output == out2.output

    def test_compiled_module_roundtrips(self):
        from repro.compiler import compile_module

        module = build_rmw_loop()
        compile_module(module)
        text = print_module(module)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text

    def test_parse_atomic_and_fence(self):
        text = """
func @main() {
entry:
  %p = alloca 8
  %old = atomic add, [%p], 3
  fence
  out %old
  ret
}
"""
        m = parse_module(text)
        state, _ = Interpreter(m).run_trace()
        assert state.output == [0]

    def test_comments_and_blanks_ignored(self):
        text = """
# a comment
func @main() {   # trailing
entry:
  %x = const 5  # five

  out %x
  ret
}
"""
        m = parse_module(text)
        state, _ = Interpreter(m).run_trace()
        assert state.output == [5]


class TestParseErrors:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("ret", "outside function"),
            ("func @f() {\n", "unterminated"),
            ("}", "unmatched"),
            ("func @f() {\nfunc @g() {\n}\n}", "nested"),
            ("func @f() {\n  %x = frobnicate 1\n}", "unknown instruction"),
            ("func @f() {\n  store 1\n}", "store needs"),
            ("func @f() {\n  %x = load [oops]\n}", "bad memory operand"),
            ("func @f(a) {\n}", "bad parameter"),
            ("func @f() {\n  cbr %c, a\n}", "cbr needs"),
            ("func @f() {\n  ckpt 5\n}", "register"),
        ],
    )
    def test_errors(self, text, match):
        with pytest.raises(ParseError, match=match):
            parse_module(text)

    def test_error_carries_line_number(self):
        try:
            parse_module("func @f() {\n  bogus\n}")
        except ParseError as exc:
            assert exc.lineno == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
