"""Tests for repro.ir.values: registers, immediates, 64-bit wrapping."""

import pytest

from repro.ir.values import Imm, Reg, as_operand, to_s64, to_u64


class TestReg:
    def test_interning_same_object(self):
        assert Reg("x") is Reg("x")

    def test_different_names_differ(self):
        assert Reg("x") is not Reg("y")

    def test_repr(self):
        assert repr(Reg("abc")) == "%abc"

    def test_usable_as_dict_key(self):
        d = {Reg("a"): 1}
        assert d[Reg("a")] == 1


class TestImm:
    def test_value_stored_signed(self):
        assert Imm(5).value == 5
        assert Imm(-5).value == -5

    def test_wraps_to_64_bits(self):
        assert Imm(1 << 64).value == 0
        assert Imm((1 << 63)).value == -(1 << 63)

    def test_equality(self):
        assert Imm(3) == Imm(3)
        assert Imm(3) != Imm(4)

    def test_not_equal_to_reg(self):
        assert Imm(3) != Reg("x")

    def test_hashable(self):
        assert len({Imm(1), Imm(1), Imm(2)}) == 2


class TestWrapping:
    def test_to_u64_masks(self):
        assert to_u64(-1) == (1 << 64) - 1

    def test_to_s64_positive(self):
        assert to_s64(42) == 42

    def test_to_s64_negative_roundtrip(self):
        assert to_s64(to_u64(-7)) == -7

    def test_to_s64_boundary(self):
        assert to_s64((1 << 63) - 1) == (1 << 63) - 1
        assert to_s64(1 << 63) == -(1 << 63)


class TestAsOperand:
    def test_int_becomes_imm(self):
        op = as_operand(9)
        assert isinstance(op, Imm) and op.value == 9

    def test_reg_passthrough(self):
        assert as_operand(Reg("q")) is Reg("q")

    def test_imm_passthrough(self):
        imm = Imm(1)
        assert as_operand(imm) is imm

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_operand("nope")
