"""Cross-cutting timing-simulator invariants over real workload traces."""

from dataclasses import replace

import pytest

from repro.arch import simulate, skylake_machine
from repro.schemes import ablation_ladder, baseline, capri, cwsp, psp_ideal
from repro.workloads import PROFILES, generate_trace
from repro.workloads.synthetic import prime_ranges

APPS = ["namd", "lbm", "radix", "tpcc", "xsbench", "kmeans"]
N = 8000


@pytest.fixture(scope="module")
def machine():
    return skylake_machine(scaled=True)


@pytest.fixture(scope="module", params=APPS)
def app(request):
    return request.param


class TestConservation:
    def test_event_counts_consistent(self, machine, app):
        p = PROFILES[app]
        tr = generate_trace(p, N, seed=2, instrument="pruned")
        s = simulate(tr, machine, cwsp(), prime=prime_ranges(p))
        assert s.insts == len(tr)
        assert s.loads + s.stores + s.boundaries <= s.insts

    def test_cwsp_persist_bytes_exact(self, machine, app):
        p = PROFILES[app]
        tr = generate_trace(p, N, seed=2, instrument="pruned")
        s = simulate(tr, machine, cwsp(), prime=prime_ranges(p))
        # no coalescing: every store (incl. ckpts and atomics) sends 8B
        assert s.persist_path_bytes == 8 * s.nvm_writes

    def test_baseline_no_persist_traffic(self, machine, app):
        p = PROFILES[app]
        tr = generate_trace(p, N, seed=2)
        s = simulate(tr, machine, baseline(), prime=prime_ranges(p))
        assert s.persist_path_bytes == 0
        assert s.pb_full_stalls == 0 and s.rbt_full_stalls == 0
        assert s.boundary_stall_cycles == 0.0

    def test_miss_rates_are_rates(self, machine, app):
        p = PROFILES[app]
        tr = generate_trace(p, N, seed=2)
        s = simulate(tr, machine, baseline(), prime=prime_ranges(p))
        assert 0.0 <= s.l1_miss_rate <= 1.0
        assert 0.0 <= s.llc_miss_rate <= 1.0

    def test_capri_coalescing_never_exceeds_per_store(self, machine, app):
        p = PROFILES[app]
        tr = generate_trace(p, N, seed=2, instrument="unpruned")
        s = simulate(tr, machine, capri(), prime=prime_ranges(p))
        assert s.nvm_writes <= s.stores


class TestMonotonicity:
    def test_more_bandwidth_never_slower(self, machine, app):
        p = PROFILES[app]
        tr = generate_trace(p, N, seed=2, instrument="pruned")
        prime = prime_ranges(p)
        slow = simulate(tr, replace(machine, persist_bw_gbps=1.0), cwsp(), prime=prime)
        fast = simulate(tr, replace(machine, persist_bw_gbps=16.0), cwsp(), prime=prime)
        assert fast.cycles <= slow.cycles * 1.001

    def test_bigger_rbt_never_slower(self, machine, app):
        p = PROFILES[app]
        tr = generate_trace(p, N, seed=2, instrument="pruned")
        prime = prime_ranges(p)
        small = simulate(tr, replace(machine, rbt_entries=4), cwsp(), prime=prime)
        big = simulate(tr, replace(machine, rbt_entries=64), cwsp(), prime=prime)
        assert big.cycles <= small.cycles * 1.001

    def test_ladder_final_stage_cheaper_than_peak(self, machine, app):
        p = PROFILES[app]
        prime = prime_ranges(p)
        base = simulate(generate_trace(p, N, seed=2), machine, baseline(), prime=prime)
        results = {}
        for name, scheme, tk in ablation_ladder():
            tr = generate_trace(p, N, seed=2, instrument=tk["ckpts"])
            results[name] = simulate(tr, machine, scheme, prime=prime).cycles / base.cycles
        assert results["+Pruning (cWSP)"] <= results["+Persist Path"] * 1.02

    def test_psp_never_beats_dram_cached_baseline_on_dram_resident(self, machine):
        # an app whose working set is DRAM-resident must suffer in PSP
        p = PROFILES["astar"]
        tr = generate_trace(p, N, seed=2)
        prime = prime_ranges(p)
        base = simulate(tr, machine, baseline(), prime=prime)
        psp = simulate(tr, machine, psp_ideal(), prime=prime)
        assert psp.cycles >= base.cycles
