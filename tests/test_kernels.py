"""Integration tests over the IR kernel programs: functional output,
compiled equivalence, idempotence, and crash consistency."""

import pytest

from repro.compiler import (
    check_idempotence_static,
    check_regions_replayable,
    compile_module,
)
from repro.ir.interpreter import Interpreter
from repro.ir.verifier import verify_module
from repro.recovery import PersistenceConfig, check_crash_consistency
from repro.workloads.programs import KERNELS, build_kernel

EXPECTED_OUTPUT = {
    "counter": [190],
    "linked_list": [285],
    "hashmap": [462],
    "matmul": [1084],
}


class TestFunctional:
    @pytest.mark.parametrize("name", KERNELS)
    def test_kernel_verifies_and_runs(self, name):
        module, entry, args = build_kernel(name)
        verify_module(module)
        state, _ = Interpreter(module).run_trace(entry, args)
        assert state.output  # every kernel reports a checkable result

    @pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
    def test_known_outputs(self, name):
        module, entry, args = build_kernel(name)
        state, _ = Interpreter(module).run_trace(entry, args)
        assert state.output == EXPECTED_OUTPUT[name]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            build_kernel("nope")

    def test_kernels_registry_nonempty(self):
        assert len(KERNELS) >= 8


class TestCompiled:
    @pytest.mark.parametrize("name", KERNELS)
    def test_compiled_output_identical(self, name):
        module, entry, args = build_kernel(name)
        ref, _ = Interpreter(module).run_trace(entry, args)
        compiled, _, _ = build_kernel(name)
        compile_module(compiled)
        verify_module(compiled)
        got, _ = Interpreter(compiled, spill_args=True).run_trace(entry, args)
        assert got.output == ref.output

    @pytest.mark.parametrize("name", KERNELS)
    def test_no_antidependence_after_compilation(self, name):
        module, _, _ = build_kernel(name)
        compile_module(module)
        check_idempotence_static(module)

    @pytest.mark.parametrize("name", ["counter", "linked_list", "sort"])
    def test_regions_dynamically_replayable(self, name):
        module, entry, args = build_kernel(name)
        compile_module(module)
        assert check_regions_replayable(module, entry, args) > 0


class TestCrashConsistency:
    @pytest.mark.parametrize("name", KERNELS)
    def test_default_config(self, name):
        module, entry, args = build_kernel(name)
        compile_module(module)
        report = check_crash_consistency(module, entry, args, stride=23)
        assert report.ok, (name, report.divergences[:3])

    @pytest.mark.parametrize("name", ["linked_list", "bst", "syscall_echo"])
    def test_adversarial_configs(self, name):
        module, entry, args = build_kernel(name)
        compile_module(module)
        for config in (
            PersistenceConfig(drain_per_step=0.05, mc_skew=(0, 9)),
            PersistenceConfig(rbt_size=2, pb_size=3, drain_per_step=0.4),
        ):
            report = check_crash_consistency(
                module, entry, args, stride=31, config=config
            )
            assert report.ok, (name, config, report.divergences[:3])

    def test_recovery_reexecutes_bounded_work(self):
        # Section IX-E's argument: only tens of instructions re-execute
        # per region; sanity-check the resumed fraction is not ~1.0
        # (i.e., recovery is not just restarting from scratch).
        module, entry, args = build_kernel("matmul")
        compile_module(module)
        report = check_crash_consistency(module, entry, args, stride=9)
        assert report.ok
        assert report.restarts < report.points_checked / 4
        assert report.mean_resumed_fraction < 0.95
