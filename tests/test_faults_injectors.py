"""Fault-injection mechanics: torn persists, storage corruption with
checksum detection, nested-crash epochs, and the graceful-degradation
contract (never a silent wrong answer)."""

import pytest

from repro.compiler import compile_module
from repro.faults import (
    FaultSchedule,
    FlipSpec,
    ProbeHook,
    TearSpec,
    TornPersistInjector,
    apply_flip,
    resume_epoch,
    run_first_epoch,
    run_schedule,
)
from repro.recovery import (
    DegradedRecovery,
    FailurePlan,
    assess_damage,
    recover_checked,
    run_with_failure,
    word_checksum,
)
from repro.workloads.programs import build_kernel


@pytest.fixture(scope="module")
def counter():
    module, entry, args = build_kernel("counter")
    compile_module(module)
    ref_model, completed, ref_state = run_with_failure(module, None, entry, args)
    assert completed
    return module, entry, args, list(ref_model.released_output), ref_state.memory


def _run(counter, schedule):
    module, entry, args, _, _ = counter
    return run_schedule(module, entry, args, schedule)


class TestChecksums:
    def test_word_checksum_deterministic(self):
        assert word_checksum(0x1000, 42) == word_checksum(0x1000, 42)

    def test_word_checksum_sensitive(self):
        base = word_checksum(0x1000, 42)
        assert word_checksum(0x1000, 43) != base
        assert word_checksum(0x1008, 42) != base
        assert word_checksum(0x1000, 42, salt=7) != base

    def test_negative_values_hash(self):
        # Stored old-values are signed 64-bit; hashing must accept them.
        assert 0 <= word_checksum(0x1000, -5) < (1 << 16)


class TestTornPersists:
    def test_tear_never_silently_wrong(self, counter):
        module, entry, args, ref_output, ref_memory = counter
        for idx in (1, 5, 20):
            out = _run(counter, FaultSchedule(tear=TearSpec(idx)))
            assert out.status in ("recovered", "degraded"), out.status
            if out.status == "recovered":
                assert out.output == ref_output
                assert out.memory == ref_memory

    def test_tear_hook_fires_and_cuts(self, counter):
        module, entry, args, _, _ = counter
        hook = TornPersistInjector(3)
        model, completed, _ = run_first_epoch(
            module, entry, args, None, None, fault_hook=hook
        )
        assert hook.fired and not completed
        # The torn word's ECC was computed over the intended value, so a
        # checked image must notice *something* unless the undo log
        # healed it (logged tear: revert rewrites the full old value).
        image = model.failure_image_checked()
        assert not image.damaged_log_entries  # tears never damage the log

    def test_probe_hook_counts_applies(self, counter):
        module, entry, args, _, _ = counter
        hook = ProbeHook()
        model, completed, _ = run_first_epoch(
            module, entry, args, None, None, fault_hook=hook
        )
        assert completed
        assert hook.applies > 0
        assert model.fault_hook is None  # disarmed after the epoch


class TestStorageCorruption:
    def test_log_flip_detected_and_degrades(self, counter):
        module, entry, args, _, _ = counter
        model, completed, _ = run_with_failure(module, FailurePlan(50), entry, args)
        assert not completed
        victim = apply_flip(model, FlipSpec("log", 0, 5))
        assert victim is not None and "log entry" in victim
        image = model.failure_image_checked()
        assert image.damaged_log_entries
        degraded = assess_damage(module, model, image)
        assert isinstance(degraded, DegradedRecovery)
        assert degraded.action == "restart"
        assert "undo-log" in degraded.reason

    def test_ckpt_flip_detected(self, counter):
        module, entry, args, _, _ = counter
        model, completed, _ = run_with_failure(module, FailurePlan(50), entry, args)
        assert not completed
        victim = apply_flip(model, FlipSpec("ckpt", 2, 13))
        assert victim is not None and "checkpoint word" in victim
        result = recover_checked(module, model, entry, args)
        assert isinstance(result, DegradedRecovery)
        assert result.damaged_words

    def test_flip_on_empty_population_is_noop(self, counter):
        module, entry, args, _, _ = counter
        # Cut before anything persists: no logs survive to corrupt.
        model, completed, _ = run_with_failure(module, FailurePlan(1), entry, args)
        assert not completed
        if not model.logs:
            assert apply_flip(model, FlipSpec("log", 0, 0)) is None

    def test_corruption_never_silent(self, counter):
        module, entry, args, ref_output, ref_memory = counter
        for bit in (0, 17, 63):
            out = _run(
                counter,
                FaultSchedule(cuts=[60], flip=FlipSpec("log", bit, bit)),
            )
            assert out.status in ("recovered", "degraded")
            if out.status == "recovered":
                assert out.output == ref_output and out.memory == ref_memory
            else:
                assert out.degraded is not None


class TestNestedCrashes:
    def test_cut_during_recovery_is_idempotent(self, counter):
        module, entry, args, _, _ = counter
        model, completed, _ = run_with_failure(module, FailurePlan(60), entry, args)
        assert not completed
        ptr = model.recovery_ptr
        out = resume_epoch(module, model, 0, entry, args, None)
        assert out.kind == "cut"
        # Offset-0 cut: recovery wrote nothing persistent, so the next
        # epoch faces the same recovery boundary (the region seq is
        # re-keyed by the fresh model, but (func, uid) is pinned and a
        # carried-over snapshot exists for it).
        assert out.model.recovery_ptr[:2] == ptr[:2]
        assert out.model.recovery_ptr[2] in out.model.snapshots

    def test_repeated_recovery_cuts_converge(self, counter):
        module, entry, args, ref_output, ref_memory = counter
        out = _run(counter, FaultSchedule(cuts=[60, 0, 0, 0]))
        assert out.status == "recovered"
        assert out.output == ref_output
        assert out.memory == ref_memory
        assert out.epochs == 4

    def test_nested_cut_mid_resume(self, counter):
        module, entry, args, ref_output, ref_memory = counter
        for cuts in ([60, 5], [60, 5, 3], [30, 7, 0, 2]):
            out = _run(counter, FaultSchedule(cuts=cuts))
            assert out.status == "recovered", cuts
            assert out.output == ref_output, cuts
            assert out.memory == ref_memory, cuts

    def test_cut_beyond_end_completes(self, counter):
        module, entry, args, ref_output, _ = counter
        out = _run(counter, FaultSchedule(cuts=[10_000_000]))
        assert out.status == "completed"
        assert out.output == ref_output
