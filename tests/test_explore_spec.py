"""Sweep spec canonicalization, expansion determinism, and presets."""

import json

import pytest

from repro.explore.spec import (
    MEMORY_TECHS,
    PRESETS,
    SCHEME_FACTORIES,
    Cell,
    SweepSpec,
    expand,
)
from repro.harness.spec import SimPoint
from repro.workloads.profiles import ALL_APPS

SPEC = SweepSpec(
    name="t",
    schemes=("cwsp", "capri"),
    profiles=("astar", "lbm"),
    pb_entries=(20, 50),
    nvm_techs=("PMEM", "ReRAM"),
    n_insts=1000,
)


class TestCanonicalForm:
    def test_roundtrip(self):
        again = SweepSpec.from_dict(SPEC.to_dict())
        assert again == SPEC
        assert again.digest() == SPEC.digest()

    def test_canonical_json_stable(self):
        assert SPEC.canonical_json() == SPEC.canonical_json()
        assert json.loads(SPEC.canonical_json())["name"] == "t"

    def test_digest_sensitive_to_every_axis(self):
        from dataclasses import replace

        variants = [
            replace(SPEC, schemes=("cwsp",)),
            replace(SPEC, profiles=("astar",)),
            replace(SPEC, pb_entries=(20,)),
            replace(SPEC, rbt_entries=(8,)),
            replace(SPEC, wpq_entries=(8,)),
            replace(SPEC, wb_entries=(16,)),
            replace(SPEC, nvm_techs=("PMEM",)),
            replace(SPEC, n_insts=999),
            replace(SPEC, seed=2),
            replace(SPEC, instrument="unpruned"),
        ]
        digests = {s.digest() for s in [SPEC] + variants}
        assert len(digests) == len(variants) + 1

    def test_overrides_change_digest(self):
        assert SPEC.with_overrides(n_insts=500).digest() != SPEC.digest()
        assert SPEC.with_overrides().digest() == SPEC.digest()

    def test_validation_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="scheme"):
            SweepSpec(name="x", schemes=("nope",)).validate()
        with pytest.raises(ValueError, match="memory tech"):
            SweepSpec(name="x", schemes=("cwsp",), nvm_techs=("DDR9",)).validate()
        with pytest.raises(ValueError, match="profile"):
            SweepSpec(name="x", schemes=("cwsp",), profiles=("nope",)).validate()


class TestExpansion:
    def test_cross_product_counts(self):
        plan = expand(SPEC)
        # 2 schemes x 2 pb x 2 nvm = 8 cells, x2 profiles targets,
        # 2 nvm x 2 profiles baselines.
        assert len(plan.cells) == 8
        assert len(plan.targets) == 16
        assert len(plan.baselines) == 4
        assert len(plan.points) == 20  # all unique here

    def test_deterministic_order(self):
        p1 = expand(SPEC)
        p2 = expand(SPEC)
        assert p1.points == p2.points
        assert p1.cells == p2.cells

    def test_baselines_shared_across_knobs(self):
        # The pb sweep shares one baseline per (nvm, profile): the
        # persist-machinery knobs are invisible to the baseline scheme.
        plan = expand(SPEC)
        baseline_points = set(plan.baselines.values())
        assert len(baseline_points) == 4
        for point in baseline_points:
            assert point.instrument is None
            assert point.scheme.name == "baseline"

    def test_empty_profiles_means_all(self):
        spec = SweepSpec(name="x", schemes=("cwsp",), n_insts=100)
        assert spec.effective_profiles == tuple(ALL_APPS)
        assert len(spec.effective_profiles) == 37

    def test_default_axis_is_machine_default(self):
        spec = SweepSpec(
            name="x", schemes=("cwsp",), profiles=("astar",), n_insts=100
        )
        plan = expand(spec)
        assert len(plan.cells) == 1
        cell = plan.cells[0]
        assert cell.pb is None
        assert cell.machine().pb_entries == 50  # stock scaled machine

    def test_non_persisting_scheme_runs_uninstrumented(self):
        spec = SweepSpec(
            name="x", schemes=("psp-ideal",), profiles=("astar",), n_insts=100
        )
        plan = expand(spec)
        (point,) = [
            p for p in plan.points if isinstance(p, SimPoint) and p.scheme.name != "baseline"
        ]
        assert point.instrument is None

    def test_cell_label_resolves_defaults(self):
        cell = Cell("cwsp", None, None, None, None, "PMEM")
        assert cell.label() == "cwsp/pb50/rbt16/wpq24/wb32/PMEM"


class TestPresets:
    def test_all_presets_validate_and_expand(self):
        for name, spec in PRESETS.items():
            spec.validate()
            plan = expand(spec)
            assert plan.points, name

    def test_smoke_is_ci_sized(self):
        plan = expand(PRESETS["smoke"])
        assert len(plan.points) <= 30

    def test_default_is_production_sized(self):
        plan = expand(PRESETS["default"])
        assert len(plan.points) >= 5_000

    def test_full_is_tens_of_thousands(self):
        plan = expand(PRESETS["full"])
        assert len(plan.points) >= 30_000

    def test_catalog_names_cover_factories(self):
        full = PRESETS["full"]
        assert set(full.schemes) == set(SCHEME_FACTORIES)
        assert set(full.nvm_techs) == set(MEMORY_TECHS)
