"""The mergeable metric records backing SimStats."""

import pytest

from repro.arch.metrics import Counter, Gauge, MetricSet, Ratio, TimeWeighted


class TestRecords:
    def test_counter_merges_by_sum(self):
        a, b = Counter(), Counter()
        a.value, b.value = 3, 4
        a.merge(b)
        assert a.value == 7 and a.scalar() == 7.0

    def test_gauge_merges_by_max(self):
        a, b = Gauge(), Gauge()
        a.value, b.value = 100.0, 250.0
        a.merge(b)
        assert a.value == 250.0  # makespan semantics

    def test_time_weighted_mean(self):
        t = TimeWeighted()
        t.integral, t.time = 30.0, 10.0
        assert t.scalar() == pytest.approx(3.0)
        other = TimeWeighted()
        other.integral, other.time = 10.0, 10.0
        t.merge(other)
        assert t.scalar() == pytest.approx(2.0)  # (30+10)/(10+10)

    def test_ratio(self):
        r = Ratio()
        r.num, r.den = 1, 4
        assert r.scalar() == pytest.approx(0.25)
        assert Ratio().scalar() == 0.0  # empty denominator

    def test_dump_load_roundtrip(self):
        c = Counter(3.0)
        g = Gauge(9.0)
        t = TimeWeighted(4.0, 2.0)
        r = Ratio(1.0, 2.0)
        for rec in (c, g, t, r):
            back = type(rec).load(rec.dump())
            assert back.dump() == rec.dump()
            assert back.scalar() == rec.scalar()


class TestMetricSet:
    def test_get_or_create(self):
        m = MetricSet()
        c = m.counter("core.insts")
        c.value += 5
        assert m.counter("core.insts") is c
        assert m.value("core.insts") == 5.0

    def test_kind_collision_rejected(self):
        m = MetricSet()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_value_default_for_missing(self):
        assert MetricSet().value("nope") == 0.0
        assert MetricSet().value("nope", default=1.5) == 1.5

    def test_merge_disjoint_and_shared(self):
        a, b = MetricSet(), MetricSet()
        a.counter("n").value = 1
        b.counter("n").value = 2
        b.counter("only_b").value = 7
        a.merge(b)
        assert a.value("n") == 3.0 and a.value("only_b") == 7.0

    def test_serialization_roundtrip(self):
        m = MetricSet()
        m.counter("c").value = 3
        m.gauge("g").value = 9.5
        tw = m.time_weighted("t")
        tw.integral, tw.time = 4.0, 2.0
        r = m.ratio("r")
        r.num, r.den = 1, 2
        back = MetricSet.from_dict(m.to_dict())
        assert sorted(back.names()) == ["c", "g", "r", "t"]
        for name in back.names():
            assert back.value(name) == pytest.approx(m.value(name))


class TestSimStatsFacade:
    """The flat legacy attribute names stay readable over the spine."""

    def test_views_track_metrics(self):
        from repro.arch.machine import SimStats

        s = SimStats("cWSP")
        s.metrics.counter("core.insts").value = 1000
        s.metrics.gauge("core.cycles").value = 500.0
        assert s.insts == 1000 and isinstance(s.insts, int)
        assert s.cycles == 500.0
        assert s.ipc == pytest.approx(2.0)

    def test_merge_and_roundtrip(self):
        from repro.arch.machine import SimStats

        a, b = SimStats("x"), SimStats("x")
        a.metrics.counter("core.insts").value = 10
        b.metrics.counter("core.insts").value = 20
        a.merge(b)
        assert a.insts == 30
        back = SimStats.from_dict(a.to_dict())
        assert back.insts == 30 and back.scheme == "x"

    def test_simulation_populates_spine(self):
        from repro.arch import simulate, skylake_machine
        from repro.schemes import cwsp
        from repro.workloads.profiles import PROFILES
        from repro.workloads.synthetic import generate_trace, prime_ranges

        profile = PROFILES["namd"]
        trace = generate_trace(profile, 2000, 1, instrument="pruned")
        stats = simulate(
            trace, skylake_machine(scaled=True), cwsp(), prime=prime_ranges(profile)
        )
        m = stats.metrics
        assert m.value("core.insts") > 0
        assert m.value("core.cycles") > 0
        assert "cache.l1.miss_rate" in m
        assert "wb.mean_occupancy" in m
        assert "wpq.pushes" in m
        # the facade agrees with the spine
        assert stats.insts == int(m.value("core.insts"))
        assert stats.l1_miss_rate == pytest.approx(m.value("cache.l1.miss_rate"))
