"""Harness: runner caching, report formatting, small figure runs."""

import pytest

from repro.arch import skylake_machine
from repro.harness import FigureResult, Runner, format_table, gmean
from repro.schemes import baseline, cwsp


class TestGmean:
    def test_identity(self):
        assert gmean([2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gmean([])


class TestFormatTable:
    def test_headers_and_rows_rendered(self):
        text = format_table(["app", "x"], [["foo", 1.25]], title="T")
        assert "T" in text and "app" in text and "1.250" in text

    def test_numeric_right_aligned(self):
        text = format_table(["a", "value"], [["x", 1.0]])
        line = text.splitlines()[-1]
        assert line.endswith("1.000")


class TestFigureResult:
    def test_add_and_column(self):
        r = FigureResult("F", "d", ["app", "v"])
        r.add("a", 1.5)
        r.add("b", 2.5)
        assert r.column("v") == [1.5, 2.5]

    def test_format_includes_summary(self):
        r = FigureResult("F", "d", ["app", "v"], summary={"g": 1.06})
        r.add("a", 1.0)
        assert "g=1.060" in r.format_table()


class TestRunner:
    def test_trace_cached(self):
        r = Runner(n_insts=2000)
        t1 = r.trace("namd", "pruned")
        t2 = r.trace("namd", "pruned")
        assert t1 is t2

    def test_stats_cached(self):
        r = Runner(n_insts=2000)
        m = skylake_machine(scaled=True)
        s1 = r.stats("namd", cwsp(), m)
        s2 = r.stats("namd", cwsp(), m)
        assert s1 is s2

    def test_slowdown_at_least_one_ish(self):
        r = Runner(n_insts=5000)
        m = skylake_machine(scaled=True)
        s = r.slowdown("namd", cwsp(), m)
        assert 0.99 <= s < 2.0

    def test_baseline_slowdown_is_one(self):
        r = Runner(n_insts=5000)
        m = skylake_machine(scaled=True)
        assert r.slowdown("namd", baseline(), m, None) == pytest.approx(1.0)


class TestFigureFunctions:
    """Tiny-n smoke runs of every figure entry point."""

    def test_fig13_structure(self):
        from repro.harness.figures import fig13

        result = fig13(n_insts=3000)
        assert len([r for r in result.rows if not str(r[0]).startswith("[")]) == 37
        assert result.rows[-1][0] == "[All gmean]"
        assert 1.0 <= result.summary["all_gmean"] < 1.5

    def test_tab01_lists_cxl_devices(self):
        from repro.harness.figures import tab01

        result = tab01()
        assert [r[0] for r in result.rows] == ["CXL-A", "CXL-B", "CXL-C", "CXL-D"]

    def test_hw_overhead_is_176_bytes(self):
        from repro.harness.figures import hardware_overhead

        result = hardware_overhead()
        assert result.summary["rbt_bytes"] == 176.0

    def test_fig22_rbt_monotone(self):
        from repro.harness.figures import fig22

        result = fig22(n_insts=4000)
        row = result.rows[-1]
        assert row[1] >= row[2] >= row[3] * 0.99  # smaller RBT never faster

    def test_fig01_depth_monotone(self):
        from repro.harness.figures import fig01

        result = fig01(n_insts=4000)
        row = result.rows[-1]  # all-gmean
        assert row[1] > row[4]  # 2-level slowdown worse than 5-level

    def test_experiment_registry_complete(self):
        from repro.harness.figures import ALL_EXPERIMENTS

        expected = {
            "fig01", "fig06", "fig08", "fig13", "fig14", "fig15", "tab01",
            "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
            "fig24", "fig25", "fig26", "fig27", "hw", "recovery",
        }
        assert expected <= set(ALL_EXPERIMENTS)
