"""Recovery protocol and end-to-end crash-consistency checker."""

import pytest

from repro.compiler import compile_module
from repro.recovery import (
    FailurePlan,
    PersistenceConfig,
    RecoveryError,
    check_crash_consistency,
    recover_and_resume,
    run_with_failure,
)
from tests.conftest import build_call_chain, build_rmw_loop


@pytest.fixture
def compiled_loop():
    module = build_rmw_loop()
    compile_module(module)
    return module


class TestRunWithFailure:
    def test_no_plan_completes(self, compiled_loop):
        model, completed, state = run_with_failure(compiled_loop, None)
        assert completed and state is not None
        assert state.output == [15]

    def test_failure_interrupts(self, compiled_loop):
        model, completed, state = run_with_failure(compiled_loop, FailurePlan(10))
        assert not completed and state is None

    def test_failure_beyond_end_completes(self, compiled_loop):
        model, completed, _ = run_with_failure(compiled_loop, FailurePlan(10**9))
        assert completed


class TestRecoverAndResume:
    def test_early_failure_restarts(self, compiled_loop):
        model, completed, _ = run_with_failure(
            compiled_loop, FailurePlan(2), config=PersistenceConfig(drain_per_step=0.0)
        )
        assert not completed
        result = recover_and_resume(compiled_loop, model)
        assert result.recovery_ptr is None  # nothing retired: full restart
        assert result.output == [15]

    def test_mid_failure_resumes_from_region(self, compiled_loop):
        model, completed, _ = run_with_failure(compiled_loop, FailurePlan(60))
        assert not completed
        result = recover_and_resume(compiled_loop, model)
        assert result.output == [15]
        assert result.recovery_ptr is not None
        assert result.resumed_steps > 0

    def test_restored_registers_validated_against_oracle(self, compiled_loop):
        model, completed, _ = run_with_failure(compiled_loop, FailurePlan(60))
        result = recover_and_resume(compiled_loop, model, validate=True)
        # validation happened inside; restored regs exist for live-ins
        if result.recovery_ptr is not None:
            assert result.restored_regs

    def test_corrupted_slot_detected(self, compiled_loop):
        from repro.ir.interpreter import CKPT_BASE

        model, completed, _ = run_with_failure(compiled_loop, FailurePlan(80))
        assert not completed
        if model.recovery_ptr is None:
            pytest.skip("failure too early to exercise slot validation")
        # corrupt every checkpoint slot in the surviving NVM image
        corrupted = False
        for (fname, _), slot in compiled_loop.ckpt_slots.items():
            addr = CKPT_BASE + slot * 8
            if addr in model.nvm:
                model.nvm[addr] = 0x5EED
                corrupted = True
        if not corrupted:
            pytest.skip("no persisted slots at this failure point")
        with pytest.raises(RecoveryError):
            recover_and_resume(compiled_loop, model, validate=True)


class TestChecker:
    def test_loop_fully_consistent(self, compiled_loop):
        report = check_crash_consistency(compiled_loop, stride=3)
        assert report.ok, report.divergences[:3]
        assert report.points_checked > 20

    def test_call_chain_consistent(self):
        module = build_call_chain()
        compile_module(module)
        report = check_crash_consistency(module, stride=1)
        assert report.ok, report.divergences[:3]

    def test_summary_mentions_status(self, compiled_loop):
        report = check_crash_consistency(compiled_loop, stride=11)
        assert "OK" in report.summary()

    @pytest.mark.parametrize(
        "config",
        [
            PersistenceConfig(drain_per_step=0.1, mc_skew=(0, 5)),
            PersistenceConfig(drain_per_step=3.0, mc_skew=(4, 0)),
            PersistenceConfig(rbt_size=3, pb_size=4),
            PersistenceConfig(mc_count=4, mc_skew=(0, 3, 1, 6)),
        ],
    )
    def test_consistent_across_hardware_configs(self, compiled_loop, config):
        report = check_crash_consistency(compiled_loop, stride=7, config=config)
        assert report.ok, report.divergences[:3]

    def test_uncompiled_program_diverges(self):
        # Without region formation there are no recovery slices and no
        # boundaries: every recovery is a restart, and restarts over
        # partially-persisted state break on WAR programs.  Verify the
        # checker *detects* trouble rather than silently passing.
        module = build_rmw_loop()
        report = check_crash_consistency(
            module, stride=5, config=PersistenceConfig(drain_per_step=5.0)
        )
        assert not report.ok
