"""Multicore campaign layer: strategy generators over concurrent
kernels, cross-core trial classification, nested cuts during another
thread's recovery, interleave-aware shrinking (and its termination
edges), the delay-free wait account, and the --multicore CLI."""

import json

import pytest

from repro.faults import (
    MT_SCHEMES,
    MT_STRATEGIES,
    FaultSchedule,
    MTCampaignSpec,
    mt_smoke_spec,
    profile_conc_kernel,
    run_mt_campaign,
    run_mt_schedule,
    run_mt_trial,
    shrink_schedule,
)
from repro.faults import multicore as mt
from repro.faults.__main__ import main as faults_main
from repro.faults.schedule import TearSpec
from repro.harness.report import load_campaign, mt_campaign_result

#: DESIGN.md 4b: skipping checkpoint-store logging is unsound; under
#: the threaded model the recovery-slice oracle catches it per thread.
UNSOUND = {"log_ckpt_stores": False, "drain_per_step": 5.0}


@pytest.fixture(scope="module")
def queue_profile():
    module, threads, _digest, _outs, _dig = mt._mt_kernel_context("mpmc_queue")
    return module, threads, profile_conc_kernel(module, "mpmc_queue", threads)


class TestProfiling:
    def test_profile_finds_cross_thread_action(self, queue_profile):
        _module, threads, profile = queue_profile
        assert profile.total_events > 0
        assert profile.atomic_points, "queue kernel claims slots atomically"
        assert set(profile.boundary_points) == set(range(len(threads)))
        assert profile.sync_points > 0

    def test_delay_free_account_tracks_scheme(self):
        """The skewed scheme stretches drains, so each sync point burns
        more wait slots than the default scheme."""
        module, threads, _d, _o, _g = mt._mt_kernel_context("mpmc_queue")
        base = profile_conc_kernel(module, "mpmc_queue", threads)
        skew = profile_conc_kernel(
            module, "mpmc_queue", threads, MT_SCHEMES["skewed"]
        )
        assert base.sync_points == skew.sync_points
        assert skew.sync_wait_slots > base.sync_wait_slots


class TestStrategies:
    def test_atomic_cuts_bracket_each_atomic(self, queue_profile):
        _m, _t, profile = queue_profile
        scheds = mt.mt_atomic_cuts(profile, stride=1)
        cuts = {s.cuts[0] for s in scheds}
        p = profile.atomic_points[0]
        assert {p - 1, p, p + 1} <= cuts

    def test_interleave_sweep_varies_order(self, queue_profile):
        _m, _t, profile = queue_profile
        scheds = mt.mt_interleave_sweep(profile, stride=31)
        patterns = {tuple(s.interleave) for s in scheds}
        assert len(patterns) > 1
        assert all(s.cuts for s in scheds)

    def test_nested_sweep_cuts_during_recovery(self, queue_profile):
        module, threads, profile = queue_profile
        scheds = mt.mt_nested_sweep(module, threads, profile, 31, 19)
        offsets = {s.cuts[1] for s in scheds if len(s.cuts) > 1}
        assert 0 in offsets, "offset 0 = cut before recovery replays anything"
        assert any(o > 0 for o in offsets), "cuts during recovery replay"


class TestTrials:
    @pytest.mark.parametrize("kernel", ["mpmc_queue", "treiber_stack",
                                        "ticket_counter"])
    @pytest.mark.parametrize("scheme", sorted(MT_SCHEMES))
    def test_single_cut_consistent_everywhere(self, kernel, scheme):
        sched = FaultSchedule(cuts=[40], config=dict(MT_SCHEMES[scheme]))
        record = run_mt_trial(kernel, sched)
        assert record.status == "ok", record.detail

    def test_nested_cut_during_other_threads_recovery(self):
        sched = FaultSchedule(cuts=[60, 2, 1])
        record = run_mt_trial("treiber_stack", sched)
        assert record.status == "ok", record.detail
        assert record.epochs == 3  # one recovery per cut incl. the final

    def test_custom_interleave_trial(self):
        sched = FaultSchedule(cuts=[25, 0], interleave=[1, 0, 1])
        record = run_mt_trial("mpmc_queue", sched)
        assert record.status == "ok", record.detail

    def test_tear_rejected_on_threaded_runs(self):
        module, threads, _d, _o, _g = mt._mt_kernel_context("mpmc_queue")
        with pytest.raises(ValueError, match="cuts/interleave only"):
            run_mt_schedule(module, threads,
                            FaultSchedule(cuts=[], tear=TearSpec(3)))

    def test_unsound_config_is_failure(self):
        sched = FaultSchedule(cuts=[37], config=dict(UNSOUND))
        assert run_mt_trial("mpmc_queue", sched).is_failure


class TestShrinking:
    def test_shrinks_seeded_multicore_bug(self):
        """A 3-cut interleaved schedule under the unsound config fails;
        the shrinker must drop the nested cuts AND the interleave
        dimension while preserving the failure."""
        sched = FaultSchedule(cuts=[97, 5, 3], interleave=[1, 0, 1],
                              config=dict(UNSOUND))
        assert run_mt_trial("treiber_stack", sched).is_failure

        def still_fails(cand):
            return run_mt_trial("treiber_stack", cand).is_failure

        shrunk = shrink_schedule(sched, still_fails, max_evals=150)
        assert run_mt_trial("treiber_stack", shrunk).is_failure
        assert len(shrunk.cuts) == 1
        assert shrunk.interleave == []
        assert shrunk.config  # the unsound config IS the bug; kept

    def test_interleave_dimension_shrinks_alone(self):
        """Oracle pinned to the cut list: the interleave entries must
        shrink away (round-robin is minimal) without touching cuts."""
        sched = FaultSchedule(cuts=[50, 7], interleave=[2, 1])

        def fails_iff_cuts_kept(cand):
            return cand.cuts == [50, 7]

        shrunk = shrink_schedule(sched, fails_iff_cuts_kept, max_evals=60)
        assert shrunk.cuts == [50, 7]
        assert shrunk.interleave == []

    def test_already_minimal_terminates_without_change(self):
        """A 1-cut schedule whose failure needs exactly that cut: every
        candidate fails the oracle, so the loop must terminate with the
        original after one sterile pass."""
        sched = FaultSchedule(cuts=[37])
        evals = [0]

        def only_exact(cand):
            evals[0] += 1
            return cand == sched  # no candidate equals the original

        shrunk = shrink_schedule(sched, only_exact, max_evals=100)
        assert shrunk == sched
        assert evals[0] < 100, "terminated by convergence, not budget"

    def test_budget_exhaustion_keeps_last_accepted(self):
        """With max_evals too small to finish, the shrinker must stop
        at the budget and return the best accepted candidate so far."""
        sched = FaultSchedule(cuts=[80, 9, 4], interleave=[1, 1])
        calls = [0]

        def always_fails(_cand):
            calls[0] += 1
            return True

        shrunk = shrink_schedule(sched, always_fails, max_evals=3)
        assert calls[0] <= 4
        # Three acceptances of the first candidate each round: the cut
        # list lost entries but full convergence was cut short.
        assert len(shrunk.cuts) < 3 or shrunk.interleave != [1, 1]


class TestCampaign:
    def test_smoke_campaign_artifact(self, tmp_path):
        spec = mt_smoke_spec(seed=1)
        spec.kernels = ["ticket_counter"]
        spec.strategies = ["mt-atomic", "mt-nested"]
        artifact = run_mt_campaign(spec, jobs=2)
        assert artifact["meta"]["mode"] == "multicore"
        assert artifact["totals"]["divergent"] == 0
        assert artifact["totals"]["error"] == 0
        assert artifact["divergences"] == []
        # Every (scheme, strategy) cell is populated.
        cells = artifact["per_kernel"]["ticket_counter"]
        assert set(cells) == set(spec.schemes)
        for scheme in spec.schemes:
            assert set(cells[scheme]) == set(spec.strategies)
        # Delay-free account: one entry per kernel x scheme.
        df = artifact["delay_free"]["ticket_counter"]
        assert set(df) == set(spec.schemes)
        for cell in df.values():
            assert cell["sync_points"] > 0
            assert cell["wait_per_sync"] >= 0.0
        # Render + JSON round-trip through the harness report.
        path = tmp_path / "mt.json"
        from repro.faults import write_artifact

        write_artifact(artifact, str(path))
        table = mt_campaign_result(load_campaign(str(path))).format_table()
        assert "ticket_counter" in table and "wait/sync" in table

    def test_records_sorted_by_trial_id(self):
        """Satellite: worker completion order must not leak into the
        artifact -- per-cell counts are stable across jobs counts."""
        spec = MTCampaignSpec(
            kernels=["mpmc_queue"], strategies=["mt-atomic"],
            seed=1, atomic_stride=2,
        )
        seq = run_mt_campaign(spec, jobs=1)
        par = run_mt_campaign(spec, jobs=3)
        assert seq["per_kernel"] == par["per_kernel"]
        assert seq["totals"] == par["totals"]

    def test_build_schedules_covers_grid(self):
        spec = MTCampaignSpec(
            kernels=["mpmc_queue"], strategies=list(MT_STRATEGIES),
            stride=41, stride2=29, atomic_stride=4, boundary_stride=8,
            interleave_stride=61,
        )
        tasks = mt.build_mt_schedules(spec)
        assert tasks
        schemes_seen = {scheme for _k, scheme, _s in tasks}
        assert schemes_seen == set(MT_SCHEMES)
        # Every schedule pins its scheme config for the repro command.
        for _k, scheme, sched in tasks:
            assert sched.config == MT_SCHEMES[scheme]
            assert sched.seed == spec.seed

    def test_unknown_strategy_rejected(self):
        spec = MTCampaignSpec(kernels=["mpmc_queue"], strategies=["bogus"])
        with pytest.raises(ValueError, match="bogus"):
            mt.build_mt_schedules(spec)


class TestCLI:
    def test_multicore_smoke_pass(self, capsys, tmp_path):
        out = tmp_path / "mt.json"
        code = faults_main([
            "--multicore", "--kernels", "ticket_counter",
            "--strategies", "mt-atomic", "--stride", "39", "--out", str(out),
        ])
        text = capsys.readouterr().out
        assert code == 0
        assert "PASS" in text
        artifact = json.loads(out.read_text())
        assert artifact["meta"]["mode"] == "multicore"

    def test_bad_kernel_rejected_up_front(self, capsys):
        with pytest.raises(SystemExit) as exc:
            faults_main(["--multicore", "--kernels", "bogus,mpmc_queue"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "mpmc_queue" in err

    def test_bad_scheme_rejected_up_front(self, capsys):
        with pytest.raises(SystemExit) as exc:
            faults_main(["--multicore", "--schemes", "huge"])
        assert exc.value.code == 2
        assert "skewed" in capsys.readouterr().err

    def test_schemes_flag_requires_multicore(self, capsys):
        with pytest.raises(SystemExit) as exc:
            faults_main(["--schemes", "default"])
        assert exc.value.code == 2
        assert "--multicore" in capsys.readouterr().err

    def test_singlecore_bad_kernel_lists_choices(self, capsys):
        with pytest.raises(SystemExit) as exc:
            faults_main(["--kernels", "mpmc_queue"])  # conc kernel, wrong mode
        assert exc.value.code == 2
        assert "counter" in capsys.readouterr().err

    def test_repro_concurrent_kernel(self, capsys):
        code = faults_main([
            "repro", "--kernel", "mpmc_queue",
            "--schedule", '{"cuts": [25, 0], "interleave": [1, 0]}',
        ])
        assert code == 0
        assert "OK: mpmc_queue" in capsys.readouterr().out
