"""PackedTrace: representation round-trips and simulator value identity.

The packed/legacy contract is the PR's core invariant: the batched
representation and the per-event tuple list must be interchangeable
everywhere, and ``TimingSimulator.run`` must produce byte-identical
stats for either form of the same stream.
"""

import pytest

from repro.arch.config import machine_with_cache_levels, skylake_machine
from repro.arch.machine import TimingSimulator, simulate
from repro.arch.trace import (
    CODES,
    CODES_NO_ADDR,
    CODES_WITH_ADDR,
    EventView,
    PackedTrace,
    unpack_events,
)
from repro.schemes.catalog import baseline, capri, cwsp, ido, psp_ideal, replaycache
from repro.workloads.profiles import PROFILES
from repro.workloads.synthetic import generate_trace, prime_ranges

SCHEME_FACTORIES = {
    "baseline": baseline,
    "cwsp": cwsp,
    "capri": capri,
    "replaycache": replaycache,
    "ido": ido,
    "psp_ideal": psp_ideal,
}


class TestPackedTrace:
    def test_code_sets_partition(self):
        assert CODES_NO_ADDR & CODES_WITH_ADDR == frozenset()
        assert CODES == CODES_NO_ADDR | CODES_WITH_ADDR

    def test_round_trip_from_events(self):
        events = [("l", 64), ("a",), ("s", 128), ("b",), ("c", 8), ("f",), ("x", 72)]
        packed = PackedTrace.from_events(events)
        assert len(packed) == len(events)
        assert packed.to_events() == events
        assert list(packed) == events
        assert [packed[i] for i in range(len(packed))] == events

    def test_equality(self):
        a = PackedTrace("la", [8, 0])
        assert a == PackedTrace("la", [8, 0])
        assert a != PackedTrace("ls", [8, 0])
        assert a != PackedTrace("la", [8, 1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PackedTrace("ll", [8])

    def test_invalid_codes_rejected_at_construction(self):
        """Constructing with an unknown event code fails immediately,
        naming the offending code(s) -- not thousands of events later
        inside a simulator loop."""
        with pytest.raises(ValueError, match=r"invalid event code\(s\) \['z'\]"):
            PackedTrace("lza", [8, 0, 0])
        with pytest.raises(ValueError, match=r"\['q', 'z'\]"):
            PackedTrace("zq", [0, 0])
        # The error message lists the valid alphabet.
        with pytest.raises(ValueError, match="valid codes are"):
            PackedTrace("?", [0])

    def test_digest_layout_pinned(self):
        """digest() must keep the historical byte layout: the code
        string, then each address as 10 bytes little-endian, in order.

        Checked two ways: against a literal reimplementation of the
        per-address update loop, and against a pinned hex so *any*
        layout change -- including to the reimplementation -- trips the
        test.  Checkpoint files and the trace cache store these hashes;
        changing the layout would orphan all of them.
        """
        import hashlib

        trace = PackedTrace("lasbcfx", [64, 0, 128, 0, 8, 0, 1 << 40])
        h = hashlib.sha256()
        h.update(trace.codes.encode("ascii"))
        for addr in trace.addrs:
            h.update(addr.to_bytes(10, "little", signed=False))
        assert trace.digest() == h.hexdigest()
        assert trace.digest() == (
            "3bc575960bce08ede31a8b768d70259bb9f26f4b8c527ad3ee87ff287173792a"
        )

    def test_digest_stability_on_generated_stream(self):
        """Pinned digest of a generated stream: trips if either the
        generator output or the digest algorithm drifts."""
        trace = generate_trace(
            PROFILES["astar"], 2_000, seed=5, instrument="pruned", packed=True
        )
        assert trace.digest() == (
            "10c1052f43d9dee052e0accaa65f4ffeeadab43af7ff0bff3f1b7cf9ff8996ca"
        )

    def test_sidecar_not_pickled(self):
        """The columnar sidecar is derived data: pickling a trace with
        a built sidecar round-trips the stream only."""
        import pickle

        trace = PackedTrace("lsa", [8, 16, 0])
        trace.columnar()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone == trace
        assert clone._sidecar is None

    def test_generator_packed_matches_legacy(self):
        profile = PROFILES["astar"]
        for mode in (None, "unpruned", "pruned"):
            legacy = generate_trace(profile, 4_000, seed=2, instrument=mode)
            packed = generate_trace(
                profile, 4_000, seed=2, instrument=mode, packed=True
            )
            assert isinstance(packed, PackedTrace)
            # The unpacked form is a zero-copy view over the same packed
            # columns, interchangeable with the old tuple list.
            assert isinstance(legacy, EventView)
            assert legacy.packed is not None
            assert packed.to_events() == list(legacy)
            assert PackedTrace.from_events(list(legacy)) == packed
            assert legacy == packed.to_events()
            assert packed.to_events() == legacy

    def test_event_view_semantics(self):
        events = [("l", 64), ("a",), ("s", 128), ("b",)]
        packed = PackedTrace.from_events(events)
        view = packed.view()
        assert len(view) == len(events)
        assert list(view) == events
        assert view[2] == ("s", 128)
        assert view == events and events == view
        assert view == packed and view == PackedTrace.from_events(events).view()
        assert view != events[:-1]
        assert unpack_events(view) is packed
        assert unpack_events(events) is events


class TestSimulatorValueIdentity:
    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    def test_packed_equals_legacy_stats(self, scheme_name):
        """run(PackedTrace) and run(list) agree to the last bit."""
        profile = PROFILES["xsbench"]
        machine = skylake_machine(scaled=True)
        prime = prime_ranges(profile)
        legacy = generate_trace(profile, 8_000, seed=5, instrument="pruned")
        packed = generate_trace(
            profile, 8_000, seed=5, instrument="pruned", packed=True
        )
        factory = SCHEME_FACTORIES[scheme_name]
        s_legacy = simulate(legacy, machine, factory(), prime=prime)
        s_packed = simulate(packed, machine, factory(), prime=prime)
        assert s_packed.to_dict() == s_legacy.to_dict()

    def test_packed_equals_legacy_on_nonconforming_geometry(self):
        """Configs outside the fast-path gate fall back and still agree."""
        profile = PROFILES["astar"]
        machine = machine_with_cache_levels(3)
        prime = prime_ranges(profile)
        legacy = generate_trace(profile, 6_000, seed=1, instrument="pruned")
        packed = PackedTrace.from_events(legacy)
        s_legacy = simulate(legacy, machine, cwsp(), prime=prime)
        s_packed = simulate(packed, machine, cwsp(), prime=prime)
        assert s_packed.to_dict() == s_legacy.to_dict()

    def test_fast_path_actually_engaged(self):
        """The default bench machine must qualify for the fused loop."""
        sim = TimingSimulator(skylake_machine(scaled=True), cwsp())
        assert sim._packed_fast

    def test_run_accepts_iterables(self):
        """Generators (no len) still simulate via the reference loop."""
        profile = PROFILES["astar"]
        machine = skylake_machine(scaled=True)
        legacy = generate_trace(profile, 3_000, seed=9, instrument="pruned")
        s_list = simulate(legacy, machine, cwsp(), prime=prime_ranges(profile))
        s_iter = simulate(
            iter(legacy), machine, cwsp(), prime=prime_ranges(profile)
        )
        assert s_iter.to_dict() == s_list.to_dict()
