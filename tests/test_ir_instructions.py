"""Tests for instruction classes: dest/uses/operands and validation."""

import pytest

from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Boundary,
    Branch,
    Call,
    Checkpoint,
    CondBranch,
    Const,
    Fence,
    Load,
    Output,
    Ret,
    Store,
)
from repro.ir.values import Imm, Reg


class TestDestAndUses:
    def test_const_defines(self):
        i = Const(Reg("a"), 7)
        assert i.dest() is Reg("a")
        assert list(i.uses()) == []

    def test_binop_uses_both_regs(self):
        i = BinOp("add", Reg("d"), Reg("a"), Reg("b"))
        assert set(i.uses()) == {Reg("a"), Reg("b")}

    def test_binop_imm_operand_not_a_use(self):
        i = BinOp("add", Reg("d"), Reg("a"), Imm(1))
        assert set(i.uses()) == {Reg("a")}

    def test_load_uses_address(self):
        i = Load(Reg("d"), Reg("p"), 8)
        assert list(i.uses()) == [Reg("p")]
        assert i.dest() is Reg("d")

    def test_store_has_no_dest(self):
        i = Store(Reg("v"), Reg("p"))
        assert i.dest() is None
        assert set(i.uses()) == {Reg("v"), Reg("p")}

    def test_call_uses_args(self):
        i = Call(Reg("r"), "f", [Reg("a"), Imm(1), Reg("b")])
        assert set(i.uses()) == {Reg("a"), Reg("b")}
        assert i.dest() is Reg("r")

    def test_void_call_dest_none(self):
        assert Call(None, "f", []).dest() is None

    def test_ret_value_use(self):
        assert list(Ret(Reg("v")).uses()) == [Reg("v")]
        assert list(Ret(None).uses()) == []

    def test_checkpoint_uses_its_reg(self):
        assert list(Checkpoint(Reg("r")).uses()) == [Reg("r")]

    def test_atomic_uses(self):
        i = AtomicRMW(Reg("old"), "add", Reg("p"), Reg("v"))
        assert set(i.uses()) == {Reg("p"), Reg("v")}

    def test_output_uses(self):
        assert list(Output(Reg("v")).uses()) == [Reg("v")]

    def test_condbranch_uses_cond(self):
        i = CondBranch(Reg("c"), "a", "b")
        assert list(i.uses()) == [Reg("c")]


class TestValidation:
    def test_binop_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            BinOp("bogus", Reg("d"), Imm(1), Imm(2))

    def test_alloca_rejects_unaligned(self):
        with pytest.raises(ValueError):
            Alloca(Reg("p"), 12)

    def test_alloca_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Alloca(Reg("p"), 0)

    def test_atomic_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            AtomicRMW(Reg("d"), "mul", Reg("p"), Imm(1))

    def test_boundary_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Boundary("bogus")

    def test_boundary_kinds_accepted(self):
        for kind in Boundary.KINDS:
            assert Boundary(kind).kind == kind


class TestClassification:
    def test_terminators(self):
        assert Branch("x").is_terminator
        assert CondBranch(Imm(1), "a", "b").is_terminator
        assert Ret(None).is_terminator
        assert not Store(Imm(1), Imm(8)).is_terminator

    def test_memory_touching(self):
        assert Load(Reg("d"), Reg("p")).touches_memory
        assert Store(Imm(1), Reg("p")).touches_memory
        assert Checkpoint(Reg("r")).touches_memory
        assert Call(None, "f").touches_memory
        assert not BinOp("add", Reg("d"), Imm(1), Imm(2)).touches_memory
        assert not Fence().touches_memory
