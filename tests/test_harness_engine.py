"""The experiment engine: planning, dedup, caching, parallel fan-out."""

import json

import pytest

from repro.arch import skylake_machine
from repro.harness.engine import (
    Engine,
    MemoryCache,
    NullCache,
    ResultCache,
    code_salt,
    compute_point,
    parallel_map,
    point_cache_key,
)
from repro.harness.report import FigureResult
from repro.harness.spec import (
    ExperimentSpec,
    PlanContext,
    ResolvedResolver,
    ShapeError,
    SimPoint,
)
from repro.schemes import baseline, cwsp

N = 2000


def _spec(name, apps, scheme_factory=cwsp, check=None):
    """A minimal slowdown experiment over *apps*."""

    def build(r, ctx):
        result = FigureResult(name, "test experiment", ["app", "slowdown"])
        for app in apps:
            result.add(app, r.slowdown(app, scheme_factory(), skylake_machine(scaled=True)))
        result.summary = {"n": float(len(apps))}
        return result

    return ExperimentSpec(name, name, build, default_n_insts=N, check=check)


class CountingCache(MemoryCache):
    """MemoryCache that counts lookups and stores."""

    def __init__(self):
        super().__init__()
        self.gets = 0
        self.puts = 0

    def get(self, key):
        self.gets += 1
        return super().get(key)

    def put(self, key, point, stats):
        self.puts += 1
        super().put(key, point, stats)


class TestCacheKey:
    def test_stable_across_calls(self):
        p = SimPoint("namd", cwsp(), skylake_machine(scaled=True), "pruned", N, 1)
        assert point_cache_key(p) == point_cache_key(p)

    def test_sensitive_to_every_point_field(self):
        m = skylake_machine(scaled=True)
        base = SimPoint("namd", cwsp(), m, "pruned", N, 1)
        variants = [
            SimPoint("lbm", cwsp(), m, "pruned", N, 1),
            SimPoint("namd", baseline(), m, "pruned", N, 1),
            SimPoint("namd", cwsp(), m, None, N, 1),
            SimPoint("namd", cwsp(), m, "pruned", N + 1, 1),
            SimPoint("namd", cwsp(), m, "pruned", N, 2),
        ]
        keys = {point_cache_key(p) for p in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_salt_invalidates(self):
        p = SimPoint("namd", cwsp(), skylake_machine(scaled=True), "pruned", N, 1)
        assert point_cache_key(p, salt="a") != point_cache_key(p, salt="b")
        assert point_cache_key(p) == point_cache_key(p, salt=code_salt())


class TestDedupAndCache:
    def test_shared_points_execute_exactly_once(self):
        # Both specs need cwsp+baseline for "namd"; spec_b adds one app.
        cache = CountingCache()
        eng = Engine(cache=cache)
        eng.run([_spec("a", ["namd"]), _spec("b", ["namd", "lbm"])])
        # 2 apps x (baseline, cwsp) = 4 deduplicated points, each
        # simulated exactly once despite "namd" appearing in both specs.
        assert eng.last_run.planned == 4
        assert eng.last_run.executed == 4
        assert cache.puts == 4

    def test_warm_rerun_does_zero_simulations(self):
        cache = CountingCache()
        eng = Engine(cache=cache)
        first = eng.run_one(_spec("a", ["namd", "lbm"]))
        assert eng.last_run.executed == 4
        again = eng.run_one(_spec("a", ["namd", "lbm"]))
        assert eng.last_run.executed == 0
        assert eng.last_run.cached == 4
        assert cache.puts == 4  # nothing new stored
        assert again.rows == first.rows

    def test_disk_cache_warm_across_engines(self, tmp_path):
        spec = _spec("a", ["namd"])
        e1 = Engine(cache=ResultCache(str(tmp_path)))
        r1 = e1.run_one(spec)
        assert e1.last_run.executed == 2
        e2 = Engine(cache=ResultCache(str(tmp_path)))
        r2 = e2.run_one(spec)
        assert e2.last_run.executed == 0
        assert r2.rows == r1.rows

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        spec = _spec("a", ["namd"])
        e1 = Engine(cache=ResultCache(str(tmp_path)))
        e1.run_one(spec)
        for path in tmp_path.rglob("*.json"):
            path.write_text("{torn")
        e2 = Engine(cache=ResultCache(str(tmp_path)))
        e2.run_one(spec)
        assert e2.last_run.executed == 2  # recomputed, not crashed

    def test_code_salt_change_invalidates(self, tmp_path):
        spec = _spec("a", ["namd"])
        e1 = Engine(cache=ResultCache(str(tmp_path)), salt="v1")
        e1.run_one(spec)
        e2 = Engine(cache=ResultCache(str(tmp_path)), salt="v2")
        e2.run_one(spec)
        assert e2.last_run.executed == 2  # different salt: full recompute
        e3 = Engine(cache=ResultCache(str(tmp_path)), salt="v1")
        e3.run_one(spec)
        assert e3.last_run.executed == 0

    def test_null_cache_always_executes(self):
        eng = Engine(cache=NullCache())
        spec = _spec("a", ["namd"])
        eng.run_one(spec)
        assert eng.last_run.executed == 2
        eng.run_one(spec)
        assert eng.last_run.executed == 2

    def test_cache_entry_records_point_provenance(self, tmp_path):
        eng = Engine(cache=ResultCache(str(tmp_path)))
        eng.run_one(_spec("a", ["namd"]))
        entries = list(tmp_path.rglob("*.json"))
        assert len(entries) == 2
        payload = json.loads(entries[0].read_text())
        assert payload["kind"] == "SimPoint"
        assert payload["point"]["app"] == "namd"
        assert "stats" in payload


class TestParallelism:
    def test_jobs2_matches_jobs1(self):
        spec = _spec("a", ["namd", "lbm", "milc"])
        r1 = Engine(jobs=1, cache=NullCache()).run_one(spec)
        r2 = Engine(jobs=2, cache=NullCache()).run_one(spec)
        assert r1.rows == r2.rows

    def test_parallel_map_inline_and_pool(self):
        tasks = list(range(7))
        assert parallel_map(_square, tasks, jobs=1) == [x * x for x in tasks]
        assert parallel_map(_square, tasks, jobs=2) == [x * x for x in tasks]
        assert sorted(parallel_map(_square, tasks, jobs=2, ordered=False)) == sorted(
            x * x for x in tasks
        )


def _square(x):
    return x * x


class TestEngineSemantics:
    def test_seed_propagates_into_points(self):
        eng = Engine(seed=7)
        points = _spec("a", ["namd"]).plan(eng.context_for(_spec("a", ["namd"])))
        assert all(p.seed == 7 for p in points)

    def test_n_insts_override(self):
        eng = Engine(n_insts=1234)
        spec = _spec("a", ["namd"])
        points = spec.plan(eng.context_for(spec))
        assert all(p.n_insts == 1234 for p in points)

    def test_seeds_change_results(self):
        p1 = SimPoint("namd", cwsp(), skylake_machine(scaled=True), "pruned", N, 1)
        p2 = SimPoint("namd", cwsp(), skylake_machine(scaled=True), "pruned", N, 2)
        assert compute_point(p1).cycles != compute_point(p2).cycles

    def test_shape_violation_raises(self):
        def bad_check(result):
            assert False, "deliberately broken"

        eng = Engine()
        with pytest.raises(ShapeError, match="deliberately broken"):
            eng.run_one(_spec("a", ["namd"], check=bad_check))

    def test_unplanned_point_rejected(self):
        resolver = ResolvedResolver(PlanContext(n_insts=N), {})
        with pytest.raises(RuntimeError, match="not planned"):
            resolver.stats("namd", cwsp(), skylake_machine(scaled=True))

    def test_provenance_records_schemes(self):
        eng = Engine()
        eng.run_one(_spec("a", ["namd"]))
        prov = eng.provenance["a"]
        assert set(prov) == {"baseline", "cwsp"}
        assert prov["cwsp"]["persist_bytes"] == 8


class TestSaltRecipe:
    """The dependency-sliced cache salt (DESIGN.md section 9)."""

    def test_recipe_covers_exactly_the_simulated_modules(self):
        from repro.harness.engine import salt_recipe

        modules = set(salt_recipe()["modules"])
        # Everything a simulation point executes...
        assert {
            "repro.arch.machine",
            "repro.arch.multicore",
            "repro.arch.caches",
            "repro.arch.queues",
            "repro.arch.trace",
            "repro.arch.metrics",
            "repro.arch.config",
            "repro.arch.scheme",
            "repro.schemes.catalog",
            "repro.workloads.profiles",
            "repro.workloads.synthetic",
        } <= modules
        # ...and nothing a point never touches: the harness itself,
        # the compiler/IR stack, the fault engine, and the two
        # contract-pinned backends (bit-identical by CI contract).
        for absent in (
            "repro.harness.engine",
            "repro.ir.interpreter",
            "repro.compiler.pipeline",
            "repro.faults.campaign",
            "repro.workloads.adapter",
            "repro.arch.checkpoint",
            "repro.arch.columnar",
        ):
            assert absent not in modules, absent

    def test_salt_is_recipe_digest_and_stable(self):
        import hashlib
        import json

        from repro.harness.engine import salt_recipe

        canonical = json.dumps(salt_recipe(), sort_keys=True, separators=(",", ":"))
        assert code_salt() == hashlib.sha256(canonical.encode()).hexdigest()[:16]
        assert code_salt() == code_salt()

    def test_recipe_hashes_match_files(self):
        import hashlib
        from pathlib import Path

        import repro
        from repro.harness.engine import salt_recipe

        root = Path(repro.__file__).parent.parent
        for name, digest in salt_recipe()["modules"].items():
            path = root / Path(*name.split(".")).with_suffix(".py")
            assert digest == hashlib.sha256(path.read_bytes()).hexdigest(), name


# ----------------------------------------------------------------------
# Salt closure vs. import styles (issue 10 satellite): the AST walk
# must include every *runtime* import and exclude type-checking-only
# and lazy ones, proven against planted fixture modules.
# ----------------------------------------------------------------------
_FX_ENTRY = '''\
"""Fixture entry module exercising every import style the walk handles."""
import typing
from typing import TYPE_CHECKING

import repro.fx_plain
from repro import fx_from
from repro.fx_pkg.mod import thing

try:
    import repro.fx_optional
except ImportError:
    import repro.fx_fallback

if TYPE_CHECKING:
    import repro.fx_typeonly
else:
    import repro.fx_else

if typing.TYPE_CHECKING:
    import repro.fx_typing_attr


def lazy():
    import repro.fx_lazy

    return repro.fx_lazy
'''


@pytest.fixture
def fixture_tree(tmp_path, monkeypatch):
    """A fake src root with one entry module and its planted imports."""
    import repro.harness.engine as engine_mod

    pkg = tmp_path / "repro"
    (pkg / "fx_pkg").mkdir(parents=True)
    (pkg / "fx_entry.py").write_text(_FX_ENTRY)
    (pkg / "fx_pkg" / "__init__.py").write_text("")
    (pkg / "fx_pkg" / "mod.py").write_text("thing = 1\n")
    for name in (
        "fx_plain", "fx_from", "fx_optional", "fx_fallback",
        "fx_else", "fx_typeonly", "fx_typing_attr", "fx_lazy",
    ):
        (pkg / f"{name}.py").write_text(f"VALUE = {name!r}\n")
    monkeypatch.setattr(engine_mod, "_src_root", lambda: tmp_path)
    return pkg


class TestSaltImportStyles:
    ENTRIES = ("repro.fx_entry",)

    def _recipe(self, excluded=frozenset()):
        from repro.harness.engine import compute_salt_recipe

        return compute_salt_recipe(entries=self.ENTRIES, excluded=excluded)

    def test_runtime_imports_all_land_in_the_recipe(self, fixture_tree):
        modules = set(self._recipe()["modules"])
        assert modules == {
            "repro.fx_entry",
            "repro.fx_plain",          # plain `import repro.x`
            "repro.fx_from",           # `from repro import x` (x is a module)
            "repro.fx_pkg.mod",        # `from repro.pkg.mod import name`
            "repro.fx_optional",       # `try: import x` body
            "repro.fx_fallback",       # `except ImportError:` arm
            "repro.fx_else",           # else-branch of a TYPE_CHECKING gate
        }

    def test_type_checking_and_lazy_imports_stay_out(self, fixture_tree):
        modules = set(self._recipe()["modules"])
        # Never executes at runtime: hashing these would invalidate
        # caches for edits no simulation can observe.
        assert "repro.fx_typeonly" not in modules      # if TYPE_CHECKING:
        assert "repro.fx_typing_attr" not in modules   # if typing.TYPE_CHECKING:
        assert "repro.fx_lazy" not in modules          # function-level import

    def test_try_except_import_is_a_real_dependency(self, fixture_tree):
        """Editing an optional-import module must change the salt."""
        from repro.harness.engine import recipe_salt

        before = recipe_salt(self._recipe())
        with open(fixture_tree / "fx_optional.py", "a") as fh:
            fh.write("# edited\n")
        assert recipe_salt(self._recipe()) != before

    def test_excluded_modules_never_enter_the_closure(self, fixture_tree):
        from repro.harness.engine import recipe_salt

        excluded = frozenset({"repro.fx_plain"})
        recipe = self._recipe(excluded=excluded)
        assert "repro.fx_plain" not in recipe["modules"]
        assert recipe["excluded"] == ["repro.fx_plain"]
        before = recipe_salt(recipe)
        with open(fixture_tree / "fx_plain.py", "a") as fh:
            fh.write("# edited\n")
        assert recipe_salt(self._recipe(excluded=excluded)) == before


# ----------------------------------------------------------------------
# parallel_map shutdown semantics (issue 10 satellite): worker death
# and KeyboardInterrupt must reap every worker and keep flushed results.
# ----------------------------------------------------------------------
def _die_or_echo(task):
    import os as _os
    import signal as _signal
    import time as _time

    if task == "die":
        _time.sleep(1.0)  # let the other worker finish + flush first
        _os.kill(_os.getpid(), _signal.SIGKILL)
    return task


def _interrupt_or_echo(task):
    import time as _time

    if task == "boom":
        _time.sleep(1.0)
        raise KeyboardInterrupt
    return task


def _live_children():
    import multiprocessing

    return {p for p in multiprocessing.active_children() if p.is_alive()}


class TestParallelMapShutdown:
    def test_worker_death_raises_and_keeps_flushed_results(self):
        from repro.harness.engine import WorkerCrash

        baseline = _live_children()
        flushed = {}
        tasks = ["die", "a", "b", "c", "d"]
        with pytest.raises(WorkerCrash, match="worker process died"):
            parallel_map(
                _die_or_echo, tasks, jobs=2, ordered=False,
                on_result=lambda i, r: flushed.__setitem__(i, r),
            )
        # Partial results were streamed out before the crash...
        assert set(flushed.values()) == {"a", "b", "c", "d"}
        assert all(tasks[i] == r for i, r in flushed.items())
        # ...and no worker process outlives the call.
        assert _live_children() <= baseline

    def test_keyboard_interrupt_reaps_workers(self):
        baseline = _live_children()
        flushed = {}
        with pytest.raises(KeyboardInterrupt):
            parallel_map(
                _interrupt_or_echo, ["boom", "a", "b", "c"], jobs=2,
                ordered=False,
                on_result=lambda i, r: flushed.__setitem__(i, r),
            )
        assert set(flushed.values()) == {"a", "b", "c"}
        assert _live_children() <= baseline

    def test_always_pool_forces_out_of_process_execution(self):
        # jobs=1 + a single task normally runs inline; always_pool is
        # how the serve loop guarantees fresh-code workers.
        assert parallel_map(_worker_pid, [0], jobs=1) == [__import__("os").getpid()]
        (other,) = parallel_map(
            _worker_pid, [0], jobs=1, always_pool=True, mp_context="spawn"
        )
        assert other != __import__("os").getpid()

    def test_empty_task_list_never_spins_a_pool(self):
        assert parallel_map(_square, [], jobs=4, always_pool=True) == []


def _worker_pid(_task):
    import os as _os

    return _os.getpid()
