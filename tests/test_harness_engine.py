"""The experiment engine: planning, dedup, caching, parallel fan-out."""

import json

import pytest

from repro.arch import skylake_machine
from repro.harness.engine import (
    Engine,
    MemoryCache,
    NullCache,
    ResultCache,
    code_salt,
    compute_point,
    parallel_map,
    point_cache_key,
)
from repro.harness.report import FigureResult
from repro.harness.spec import (
    ExperimentSpec,
    PlanContext,
    ResolvedResolver,
    ShapeError,
    SimPoint,
)
from repro.schemes import baseline, cwsp

N = 2000


def _spec(name, apps, scheme_factory=cwsp, check=None):
    """A minimal slowdown experiment over *apps*."""

    def build(r, ctx):
        result = FigureResult(name, "test experiment", ["app", "slowdown"])
        for app in apps:
            result.add(app, r.slowdown(app, scheme_factory(), skylake_machine(scaled=True)))
        result.summary = {"n": float(len(apps))}
        return result

    return ExperimentSpec(name, name, build, default_n_insts=N, check=check)


class CountingCache(MemoryCache):
    """MemoryCache that counts lookups and stores."""

    def __init__(self):
        super().__init__()
        self.gets = 0
        self.puts = 0

    def get(self, key):
        self.gets += 1
        return super().get(key)

    def put(self, key, point, stats):
        self.puts += 1
        super().put(key, point, stats)


class TestCacheKey:
    def test_stable_across_calls(self):
        p = SimPoint("namd", cwsp(), skylake_machine(scaled=True), "pruned", N, 1)
        assert point_cache_key(p) == point_cache_key(p)

    def test_sensitive_to_every_point_field(self):
        m = skylake_machine(scaled=True)
        base = SimPoint("namd", cwsp(), m, "pruned", N, 1)
        variants = [
            SimPoint("lbm", cwsp(), m, "pruned", N, 1),
            SimPoint("namd", baseline(), m, "pruned", N, 1),
            SimPoint("namd", cwsp(), m, None, N, 1),
            SimPoint("namd", cwsp(), m, "pruned", N + 1, 1),
            SimPoint("namd", cwsp(), m, "pruned", N, 2),
        ]
        keys = {point_cache_key(p) for p in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_salt_invalidates(self):
        p = SimPoint("namd", cwsp(), skylake_machine(scaled=True), "pruned", N, 1)
        assert point_cache_key(p, salt="a") != point_cache_key(p, salt="b")
        assert point_cache_key(p) == point_cache_key(p, salt=code_salt())


class TestDedupAndCache:
    def test_shared_points_execute_exactly_once(self):
        # Both specs need cwsp+baseline for "namd"; spec_b adds one app.
        cache = CountingCache()
        eng = Engine(cache=cache)
        eng.run([_spec("a", ["namd"]), _spec("b", ["namd", "lbm"])])
        # 2 apps x (baseline, cwsp) = 4 deduplicated points, each
        # simulated exactly once despite "namd" appearing in both specs.
        assert eng.last_run.planned == 4
        assert eng.last_run.executed == 4
        assert cache.puts == 4

    def test_warm_rerun_does_zero_simulations(self):
        cache = CountingCache()
        eng = Engine(cache=cache)
        first = eng.run_one(_spec("a", ["namd", "lbm"]))
        assert eng.last_run.executed == 4
        again = eng.run_one(_spec("a", ["namd", "lbm"]))
        assert eng.last_run.executed == 0
        assert eng.last_run.cached == 4
        assert cache.puts == 4  # nothing new stored
        assert again.rows == first.rows

    def test_disk_cache_warm_across_engines(self, tmp_path):
        spec = _spec("a", ["namd"])
        e1 = Engine(cache=ResultCache(str(tmp_path)))
        r1 = e1.run_one(spec)
        assert e1.last_run.executed == 2
        e2 = Engine(cache=ResultCache(str(tmp_path)))
        r2 = e2.run_one(spec)
        assert e2.last_run.executed == 0
        assert r2.rows == r1.rows

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        spec = _spec("a", ["namd"])
        e1 = Engine(cache=ResultCache(str(tmp_path)))
        e1.run_one(spec)
        for path in tmp_path.rglob("*.json"):
            path.write_text("{torn")
        e2 = Engine(cache=ResultCache(str(tmp_path)))
        e2.run_one(spec)
        assert e2.last_run.executed == 2  # recomputed, not crashed

    def test_code_salt_change_invalidates(self, tmp_path):
        spec = _spec("a", ["namd"])
        e1 = Engine(cache=ResultCache(str(tmp_path)), salt="v1")
        e1.run_one(spec)
        e2 = Engine(cache=ResultCache(str(tmp_path)), salt="v2")
        e2.run_one(spec)
        assert e2.last_run.executed == 2  # different salt: full recompute
        e3 = Engine(cache=ResultCache(str(tmp_path)), salt="v1")
        e3.run_one(spec)
        assert e3.last_run.executed == 0

    def test_null_cache_always_executes(self):
        eng = Engine(cache=NullCache())
        spec = _spec("a", ["namd"])
        eng.run_one(spec)
        assert eng.last_run.executed == 2
        eng.run_one(spec)
        assert eng.last_run.executed == 2

    def test_cache_entry_records_point_provenance(self, tmp_path):
        eng = Engine(cache=ResultCache(str(tmp_path)))
        eng.run_one(_spec("a", ["namd"]))
        entries = list(tmp_path.rglob("*.json"))
        assert len(entries) == 2
        payload = json.loads(entries[0].read_text())
        assert payload["kind"] == "SimPoint"
        assert payload["point"]["app"] == "namd"
        assert "stats" in payload


class TestParallelism:
    def test_jobs2_matches_jobs1(self):
        spec = _spec("a", ["namd", "lbm", "milc"])
        r1 = Engine(jobs=1, cache=NullCache()).run_one(spec)
        r2 = Engine(jobs=2, cache=NullCache()).run_one(spec)
        assert r1.rows == r2.rows

    def test_parallel_map_inline_and_pool(self):
        tasks = list(range(7))
        assert parallel_map(_square, tasks, jobs=1) == [x * x for x in tasks]
        assert parallel_map(_square, tasks, jobs=2) == [x * x for x in tasks]
        assert sorted(parallel_map(_square, tasks, jobs=2, ordered=False)) == sorted(
            x * x for x in tasks
        )


def _square(x):
    return x * x


class TestEngineSemantics:
    def test_seed_propagates_into_points(self):
        eng = Engine(seed=7)
        points = _spec("a", ["namd"]).plan(eng.context_for(_spec("a", ["namd"])))
        assert all(p.seed == 7 for p in points)

    def test_n_insts_override(self):
        eng = Engine(n_insts=1234)
        spec = _spec("a", ["namd"])
        points = spec.plan(eng.context_for(spec))
        assert all(p.n_insts == 1234 for p in points)

    def test_seeds_change_results(self):
        p1 = SimPoint("namd", cwsp(), skylake_machine(scaled=True), "pruned", N, 1)
        p2 = SimPoint("namd", cwsp(), skylake_machine(scaled=True), "pruned", N, 2)
        assert compute_point(p1).cycles != compute_point(p2).cycles

    def test_shape_violation_raises(self):
        def bad_check(result):
            assert False, "deliberately broken"

        eng = Engine()
        with pytest.raises(ShapeError, match="deliberately broken"):
            eng.run_one(_spec("a", ["namd"], check=bad_check))

    def test_unplanned_point_rejected(self):
        resolver = ResolvedResolver(PlanContext(n_insts=N), {})
        with pytest.raises(RuntimeError, match="not planned"):
            resolver.stats("namd", cwsp(), skylake_machine(scaled=True))

    def test_provenance_records_schemes(self):
        eng = Engine()
        eng.run_one(_spec("a", ["namd"]))
        prov = eng.provenance["a"]
        assert set(prov) == {"baseline", "cwsp"}
        assert prov["cwsp"]["persist_bytes"] == 8


class TestSaltRecipe:
    """The dependency-sliced cache salt (DESIGN.md section 9)."""

    def test_recipe_covers_exactly_the_simulated_modules(self):
        from repro.harness.engine import salt_recipe

        modules = set(salt_recipe()["modules"])
        # Everything a simulation point executes...
        assert {
            "repro.arch.machine",
            "repro.arch.multicore",
            "repro.arch.caches",
            "repro.arch.queues",
            "repro.arch.trace",
            "repro.arch.metrics",
            "repro.arch.config",
            "repro.arch.scheme",
            "repro.schemes.catalog",
            "repro.workloads.profiles",
            "repro.workloads.synthetic",
        } <= modules
        # ...and nothing a point never touches: the harness itself,
        # the compiler/IR stack, the fault engine, and the two
        # contract-pinned backends (bit-identical by CI contract).
        for absent in (
            "repro.harness.engine",
            "repro.ir.interpreter",
            "repro.compiler.pipeline",
            "repro.faults.campaign",
            "repro.workloads.adapter",
            "repro.arch.checkpoint",
            "repro.arch.columnar",
        ):
            assert absent not in modules, absent

    def test_salt_is_recipe_digest_and_stable(self):
        import hashlib
        import json

        from repro.harness.engine import salt_recipe

        canonical = json.dumps(salt_recipe(), sort_keys=True, separators=(",", ":"))
        assert code_salt() == hashlib.sha256(canonical.encode()).hexdigest()[:16]
        assert code_salt() == code_salt()

    def test_recipe_hashes_match_files(self):
        import hashlib
        from pathlib import Path

        import repro
        from repro.harness.engine import salt_recipe

        root = Path(repro.__file__).parent.parent
        for name, digest in salt_recipe()["modules"].items():
            path = root / Path(*name.split(".")).with_suffix(".py")
            assert digest == hashlib.sha256(path.read_bytes()).hexdigest(), name
