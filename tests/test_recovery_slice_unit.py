"""RecoverySlice unit tests: op execution, failure modes."""

import pytest

from repro.compiler.recovery_slice import RecoverySlice
from repro.ir.function import Module
from repro.ir.interpreter import CKPT_BASE, Memory
from repro.ir.values import Imm, Reg


@pytest.fixture
def module():
    m = Module("m")
    m.ckpt_slot("f", Reg("a"))  # slot 0
    m.ckpt_slot("f", Reg("b"))  # slot 1
    return m


def mem_with(slots):
    mem = Memory()
    for slot, value in slots.items():
        mem.store(CKPT_BASE + slot * 8, value)
    return mem


class TestExecute:
    def test_restore_from_slot(self, module):
        rs = RecoverySlice("f", 1, (Reg("a"),), [("restore", Reg("a"))])
        regs = rs.execute(module, mem_with({0: 42}))
        assert regs == {Reg("a"): 42}

    def test_const_rematerialization(self, module):
        rs = RecoverySlice("f", 1, (Reg("a"),), [("const", Reg("a"), -7)])
        assert rs.execute(module, Memory())[Reg("a")] == -7

    def test_binop_over_restored_and_imm(self, module):
        rs = RecoverySlice(
            "f",
            1,
            (Reg("b"),),
            [("restore", Reg("a")), ("binop", "shl", Reg("b"), Reg("a"), Imm(2))],
        )
        regs = rs.execute(module, mem_with({0: 3}))
        assert regs[Reg("b")] == 12

    def test_only_live_ins_returned(self, module):
        rs = RecoverySlice(
            "f",
            1,
            (Reg("b"),),
            [("restore", Reg("a")), ("binop", "add", Reg("b"), Reg("a"), Imm(1))],
        )
        regs = rs.execute(module, mem_with({0: 1}))
        assert set(regs) == {Reg("b")}

    def test_missing_slot_raises(self, module):
        rs = RecoverySlice("f", 1, (Reg("zz"),), [("restore", Reg("zz"))])
        with pytest.raises(KeyError, match="no checkpoint slot"):
            rs.execute(module, Memory())

    def test_unrestored_live_in_raises(self, module):
        rs = RecoverySlice("f", 1, (Reg("a"),), [])
        with pytest.raises(RuntimeError, match="did not restore"):
            rs.execute(module, Memory())

    def test_counts(self, module):
        rs = RecoverySlice(
            "f",
            1,
            (Reg("b"),),
            [("restore", Reg("a")), ("binop", "add", Reg("b"), Reg("a"), Imm(1))],
        )
        assert len(rs) == 2
        assert rs.restore_count() == 1
