"""Pipeline option combinations and report aggregation."""


from repro.compiler import CompileOptions, compile_module
from repro.ir.instructions import Boundary, Checkpoint
from repro.ir.interpreter import Interpreter
from tests.conftest import build_call_chain, build_rmw_loop


def count(module, cls):
    return sum(
        1
        for fn in module.functions.values()
        for _, i in fn.instructions()
        if isinstance(i, cls)
    )


class TestOptions:
    def test_default_runs_everything(self):
        module = build_rmw_loop()
        report = compile_module(module)
        assert count(module, Boundary) > 0
        assert count(module, Checkpoint) > 0
        assert module.recovery_slices

    def test_region_formation_disabled_is_identity(self):
        module = build_rmw_loop()
        before = module.get("main").instr_count()
        report = compile_module(module, CompileOptions(region_formation=False))
        assert module.get("main").instr_count() == before
        assert count(module, Boundary) == 0
        assert report.total_boundaries == 0

    def test_checkpoints_disabled(self):
        module = build_rmw_loop()
        compile_module(module, CompileOptions(checkpoints=False))
        assert count(module, Boundary) > 0
        assert count(module, Checkpoint) == 0
        assert not module.recovery_slices

    def test_no_loop_boundaries(self):
        module = build_rmw_loop()
        compile_module(module, CompileOptions(loop_boundaries=False))
        kinds = {
            i.kind
            for fn in module.functions.values()
            for _, i in fn.instructions()
            if isinstance(i, Boundary)
        }
        assert "loop" not in kinds

    def test_pruning_off_keeps_more_checkpoints(self):
        pruned = build_rmw_loop()
        unpruned = build_rmw_loop()
        compile_module(pruned, CompileOptions(pruning=True))
        compile_module(unpruned, CompileOptions(pruning=False))
        assert count(unpruned, Checkpoint) >= count(pruned, Checkpoint)

    def test_compiled_semantics_preserved_without_pruning(self):
        module = build_rmw_loop()
        ref, _ = Interpreter(build_rmw_loop()).run_trace()
        compile_module(module, CompileOptions(pruning=False))
        got, _ = Interpreter(module, spill_args=True).run_trace()
        assert got.output == ref.output


class TestReport:
    def test_per_function_entries(self):
        module = build_call_chain()
        report = compile_module(module)
        assert set(report.functions) == {"main", "double"}

    def test_boundary_kind_breakdown(self):
        module = build_call_chain()
        report = compile_module(module)
        main = report.functions["main"]
        assert main.boundaries.get("entry") == 1
        assert main.boundaries.get("call") == 1
        assert main.boundaries.get("post_call") == 1

    def test_totals_sum_functions(self):
        module = build_call_chain()
        report = compile_module(module)
        assert report.total_boundaries == sum(
            f.total_boundaries for f in report.functions.values()
        )
        assert report.total_ckpts_inserted == (
            report.total_ckpts_pruned + report.total_ckpts_kept
        )

    def test_summary_text(self):
        module = build_rmw_loop()
        report = compile_module(module)
        text = report.summary()
        assert "boundaries" in text and "pruned" in text

    def test_idempotent_recompilation_safe(self):
        # compiling twice must not create antidependences or break
        # execution (boundaries are not reinserted at the same points)
        module = build_rmw_loop()
        compile_module(module)
        first, _ = Interpreter(module, spill_args=True).run_trace()
        compile_module(module)
        second, _ = Interpreter(module, spill_args=True).run_trace()
        assert first.output == second.output
