"""Static and dynamic idempotence checkers."""

import pytest

from repro.compiler import (
    IdempotenceViolation,
    check_idempotence_static,
    check_regions_replayable,
    compile_module,
)
from repro.ir.builder import IRBuilder
from repro.ir.function import Module
from repro.ir.values import Reg
from tests.conftest import build_call_chain, build_rmw_loop, build_straightline


class TestStatic:
    def test_compiled_module_passes(self, rmw_loop):
        compile_module(rmw_loop)
        check_idempotence_static(rmw_loop)

    def test_uncompiled_war_fails(self, straightline):
        with pytest.raises(IdempotenceViolation, match="antidependent"):
            check_idempotence_static(straightline)

    def test_violation_names_the_store(self, straightline):
        with pytest.raises(IdempotenceViolation, match="store"):
            check_idempotence_static(straightline)


class TestDynamicReplay:
    @pytest.mark.parametrize(
        "factory", [build_rmw_loop, build_straightline, build_call_chain]
    )
    def test_compiled_regions_replay(self, factory):
        module = factory()
        compile_module(module)
        checked = check_regions_replayable(module)
        assert checked > 0

    def test_uncut_war_region_fails_replay(self):
        # A WAR inside a region makes re-execution produce a different
        # result; the dynamic checker must catch it.
        b = IRBuilder(Module("m"))
        b.function("main", [])
        b.boundary("manual")
        p = b.alloca(8, Reg("p"))
        x = b.load(Reg("p"), 0, Reg("x"))
        y = b.add(Reg("x"), 1)
        b.store(y, Reg("p"))  # WAR, uncut: region increments twice on replay
        b.boundary("manual")
        z = b.load(Reg("p"))
        b.out(z)
        b.ret()
        with pytest.raises(IdempotenceViolation):
            check_regions_replayable(b.module)

    def test_atomic_regions_skipped(self):
        b = IRBuilder(Module("m"))
        b.function("main", [])
        p = b.alloca(8)
        b.atomic("add", p, 1)
        b.out(b.load(p))
        b.ret()
        compile_module(b.module)
        # atomics are inherently non-replayable; the checker skips them
        check_regions_replayable(b.module)

    def test_replay_counts_regions(self, rmw_loop):
        compile_module(rmw_loop)
        checked = check_regions_replayable(rmw_loop)
        # one region per loop iteration plus entry/exit pieces
        assert checked >= 10
