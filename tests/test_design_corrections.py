"""Executable evidence for the DESIGN.md 4b soundness corrections.

Each test runs the same workload under (a) the corrected model and
(b) the paper-literal configuration, showing that the correction is
load-bearing: with it, every failure point recovers; without it, the
crash-consistency sweep finds real divergences.
"""


from repro.compiler import compile_module
from repro.recovery import PersistenceConfig, check_crash_consistency
from repro.workloads.programs import build_kernel
from tests.conftest import build_rmw_loop

#: Aggressive draining maximizes the window in which a head region's
#: own checkpoint writes are persisted-but-needed.
FAST_DRAIN = dict(drain_per_step=6.0, mc_skew=(0, 0))


def sweep(module, entry="main", args=(), stride=2, **cfg):
    return check_crash_consistency(
        module, entry, args, stride=stride, config=PersistenceConfig(**cfg)
    )


class TestCheckpointLoggingCorrection:
    """Correction 1: checkpoint-slot writes must always be undo-logged."""

    def test_corrected_model_recovers_everywhere(self):
        module = build_rmw_loop(n=14)
        compile_module(module)
        report = sweep(module, **FAST_DRAIN)
        assert report.ok, report.divergences[:3]

    def test_paper_literal_logging_diverges(self):
        """With LogBit set only for speculative stores (the paper's
        rule) and head logs deallocated at promotion (Section V-B2),
        the ``i = i + 1; ckpt i`` loop pattern loses iterations."""
        module = build_rmw_loop(n=14)
        compile_module(module)
        report = sweep(
            module,
            log_ckpt_stores=False,
            retain_head_logs=False,
            **FAST_DRAIN,
        )
        assert not report.ok, (
            "expected the paper-literal logging discipline to corrupt "
            "recovery of a self-checkpointing loop region"
        )

    def test_divergence_is_about_state_not_crash(self):
        module = build_rmw_loop(n=14)
        compile_module(module)
        report = sweep(
            module, log_ckpt_stores=False, retain_head_logs=False, **FAST_DRAIN
        )
        # recovery itself runs; the outputs/NVM are simply wrong
        assert any(
            "output" in d.reason or "NVM" in d.reason or "RS restored" in d.reason
            for d in report.divergences
        )


class TestHeadLogRetentionCorrection:
    """Correction 2: the head's logs must survive until retirement."""

    def test_retention_alone_still_needs_ckpt_logging(self):
        # retaining head logs but not force-logging ckpts leaves the
        # window where the ckpt store commits while its region is
        # already the head: divergences remain possible.
        module = build_rmw_loop(n=14)
        compile_module(module)
        ok_report = sweep(module, retain_head_logs=True, **FAST_DRAIN)
        assert ok_report.ok

    def test_kernel_workload_with_corrections(self):
        module, entry, args = build_kernel("fib")
        compile_module(module)
        report = sweep(module, entry, args, stride=5, **FAST_DRAIN)
        assert report.ok, report.divergences[:3]

    def test_kernel_workload_paper_literal_diverges(self):
        module, entry, args = build_kernel("fib")
        compile_module(module)
        report = sweep(
            module,
            entry,
            args,
            stride=2,
            log_ckpt_stores=False,
            retain_head_logs=False,
            **FAST_DRAIN,
        )
        assert not report.ok
