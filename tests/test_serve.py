"""The serve daemon: dirty-delta recomputation, generation ledger, subscribe.

In-process tests drive :class:`ResultsServer` generation by generation;
the end-to-end test boots the real ``python -m repro.harness serve``
subprocess against a *copied* checkout and edits simulator modules
under it, proving the acceptance criteria: a contract-excluded edit
(``repro.arch.columnar``) triggers a generation with zero recomputed
points and a byte-identical artifacts digest, while a salted edit
(``repro.arch.machine``) recomputes the whole affected grid.
"""

import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.serve import ResultsServer, ServeConfig
from repro.harness.subscribe import (
    follow,
    format_entry,
    ledger_path,
    read_entries,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

# A two-point spec module: tiny enough that a generation is fast, real
# enough that its points go through compute_point and the cache.
TINY_SPECS = '''\
"""Two-point experiment registry for serve tests."""
from repro.arch import skylake_machine
from repro.harness.report import FigureResult
from repro.harness.spec import ExperimentSpec
from repro.schemes import cwsp


def _build(r, ctx):
    result = FigureResult("tiny", "serve test experiment", ["app", "slowdown"])
    for app in ("namd", "lbm"):
        result.add(app, r.slowdown(app, cwsp(), skylake_machine(scaled=True)))
    result.summary = {"n": 2.0}
    return result


SPECS = {"tiny": ExperimentSpec("tiny", "tiny", _build, default_n_insts=1000)}
'''


@pytest.fixture
def tiny_specs(tmp_path, monkeypatch):
    name = "serve_tiny_specs"
    (tmp_path / f"{name}.py").write_text(TINY_SPECS)
    monkeypatch.syspath_prepend(str(tmp_path))
    sys.modules.pop(name, None)
    yield name
    sys.modules.pop(name, None)


def _server(tmp_path, tiny_specs, **overrides):
    config = ServeConfig(
        names=["tiny"],
        out_dir=str(tmp_path / "out"),
        cache_dir=str(tmp_path / "cache"),
        specs_module=tiny_specs,
        interval=0.05,
        **overrides,
    )
    return ResultsServer(config)


class TestResultsServer:
    def test_initial_generation_simulates_everything(self, tmp_path, tiny_specs):
        server = _server(tmp_path, tiny_specs)
        entry = server.run_generation("initial", [])
        assert entry["generation"] == 0
        assert entry["planned"] == 4  # 2 apps x (baseline + cwsp)
        assert entry["dirty"] == entry["planned"]
        assert entry["clean"] == 0
        assert entry["executed"] == entry["planned"]
        assert entry["cache_hit_rate"] == 0.0
        for phase in ("plan", "classify", "simulate", "reduce", "publish"):
            assert phase in entry["phase_seconds"]
        out = tmp_path / "out"
        assert (out / "artifacts" / "tiny.json").is_file()
        assert (out / "EXPERIMENTS.md").is_file()
        assert (out / "status.json").is_file()
        assert "<!-- begin autogen:serve-tiny -->" in (
            out / "EXPERIMENTS.md"
        ).read_text()

    def test_warm_generation_is_clean_and_byte_identical(self, tmp_path, tiny_specs):
        server = _server(tmp_path, tiny_specs)
        first = server.run_generation("initial", [])
        artifact = (tmp_path / "out" / "artifacts" / "tiny.json").read_bytes()
        second = server.run_generation("edit", ["repro.arch.columnar"])
        assert second["generation"] == 1
        assert second["dirty"] == 0
        assert second["clean"] == second["planned"]
        assert second["executed"] == 0
        assert second["cache_hit_rate"] == 1.0
        assert second["artifacts_digest"] == first["artifacts_digest"]
        assert second["changed_modules"] == ["repro.arch.columnar"]
        assert (
            tmp_path / "out" / "artifacts" / "tiny.json"
        ).read_bytes() == artifact

    def test_generation_numbering_survives_restart(self, tmp_path, tiny_specs):
        _server(tmp_path, tiny_specs).run_generation("initial", [])
        reborn = _server(tmp_path, tiny_specs)
        assert reborn.generation == 1
        entry = reborn.run_generation("initial", [])
        assert entry["generation"] == 1
        gens = [e["generation"] for e in read_entries(reborn.ledger_path)]
        assert gens == [0, 1]

    def test_status_json_reflects_last_generation(self, tmp_path, tiny_specs):
        server = _server(tmp_path, tiny_specs)
        entry = server.run_generation("initial", [])
        status = json.loads((tmp_path / "out" / "status.json").read_text())
        assert status["generation"] == 0
        assert status["salt"] == entry["salt"]
        assert status["planned"] == entry["planned"]
        assert status["experiments"] == ["tiny"]
        assert status["cache_dir"] == str((tmp_path / "cache").resolve())
        assert status["pid"] == os.getpid()

    def test_watch_covers_salted_excluded_and_spec_modules(
        self, tmp_path, tiny_specs
    ):
        watched = _server(tmp_path, tiny_specs).watch_paths()
        assert "repro.arch.machine" in watched       # salted
        assert "repro.arch.columnar" in watched      # contract-excluded
        assert tiny_specs in watched                 # the spec registry
        assert "repro.harness.engine" not in watched
        for path in watched.values():
            assert path.is_file()

    def test_unknown_experiment_fails_at_boot(self, tmp_path, tiny_specs):
        config = ServeConfig(
            names=["nonesuch"],
            out_dir=str(tmp_path / "out"),
            cache_dir=str(tmp_path / "cache"),
            specs_module=tiny_specs,
        )
        with pytest.raises(SystemExit, match="nonesuch"):
            ResultsServer(config)

    def test_serve_forever_honors_max_generations(self, tmp_path, tiny_specs):
        server = _server(tmp_path, tiny_specs, max_generations=1)
        assert server.serve_forever() == 0
        assert len(read_entries(server.ledger_path)) == 1


class TestLedgerAndSubscribe:
    def _write(self, path, entries, tail=""):
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = "".join(
            json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
            for e in entries
        )
        path.write_text(lines + tail)

    def test_read_entries_missing_file_is_empty(self, tmp_path):
        assert read_entries(tmp_path / "nope.jsonl") == []

    def test_read_entries_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "generations.jsonl"
        self._write(path, [{"generation": 0}, {"generation": 1}], tail='{"gen')
        assert [e["generation"] for e in read_entries(path)] == [0, 1]

    def test_read_entries_rejects_interior_corruption(self, tmp_path):
        path = tmp_path / "generations.jsonl"
        path.write_text('{"generation": 0}\nnot json\n{"generation": 2}\n')
        with pytest.raises(ValueError, match="corrupt ledger line 2"):
            read_entries(path)

    def test_follow_replays_after_generation(self, tmp_path):
        path = ledger_path(str(tmp_path))
        self._write(path, [{"generation": g} for g in range(4)])
        got = list(follow(str(tmp_path), after=1, max_entries=2))
        assert [e["generation"] for e in got] == [2, 3]

    def test_format_entry_carries_the_key_fields(self):
        line = format_entry(
            {
                "generation": 7,
                "reason": "edit",
                "salt": "abc123",
                "planned": 37,
                "dirty": 0,
                "clean": 37,
                "cache_hit_rate": 1.0,
                "phase_seconds": {"plan": 0.1, "simulate": 0.0},
                "artifacts_digest": "feedface",
                "changed_modules": ["repro.arch.columnar"],
            }
        )
        assert "gen 7" in line
        assert "dirty=0/37" in line
        assert "digest=feedface" in line
        assert "changed=repro.arch.columnar" in line


# ----------------------------------------------------------------------
# End to end: the real daemon in a scratch checkout, under live edits.
# ----------------------------------------------------------------------
def _wait_for_lines(path, n, deadline=180.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        entries = read_entries(path)
        if len(entries) >= n:
            return entries
        time.sleep(0.2)
    raise AssertionError(
        f"ledger never reached {n} generations: {read_entries(path)}"
    )


class TestServeEndToEnd:
    def test_live_edits_drive_exact_dirty_deltas(self, tmp_path):
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        (tmp_path / "tiny_live_specs.py").write_text(TINY_SPECS)
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{tmp_path / 'src'}{os.pathsep}{tmp_path}"
        ledger = tmp_path / "out" / "generations.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.harness", "serve", "tiny",
                "--specs-module", "tiny_live_specs",
                "--interval", "0.2", "--max-generations", "3",
                "--out", "out", "--cache-dir", "cache",
            ],
            cwd=tmp_path, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            _wait_for_lines(ledger, 1)
            # A contract-excluded edit: the salt must not move, so the
            # generation recomputes *zero* points and republishes
            # byte-identical artifacts.
            with open(tmp_path / "src/repro/arch/columnar.py", "a") as fh:
                fh.write("\n# serve e2e: no-op edit\n")
            _wait_for_lines(ledger, 2)
            # A salted edit: every dependent point recomputes.
            with open(tmp_path / "src/repro/arch/machine.py", "a") as fh:
                fh.write("\n# serve e2e: salted edit\n")
            entries = _wait_for_lines(ledger, 3)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            out = proc.stdout.read() if proc.stdout else ""

        g0, g1, g2 = entries[:3]
        assert [g0["generation"], g1["generation"], g2["generation"]] == [0, 1, 2]
        assert g0["dirty"] == g0["planned"] > 0

        assert g1["changed_modules"] == ["repro.arch.columnar"], out
        assert g1["dirty"] == 0
        assert g1["executed"] == 0
        assert g1["salt"] == g0["salt"]
        assert g1["artifacts_digest"] == g0["artifacts_digest"]

        assert g2["changed_modules"] == ["repro.arch.machine"], out
        assert g2["dirty"] == g2["planned"]
        assert g2["salt"] != g0["salt"]

        # The subscribe CLI replays the same ledger.
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.harness", "subscribe", "out",
                "--from", "-1", "--max", "3",
            ],
            cwd=tmp_path, env=env, capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        lines = result.stdout.strip().splitlines()
        assert len(lines) == 3
        assert "gen 0" in lines[0]
        assert f"dirty=0/{g0['planned']}" in lines[1]
        assert "changed=repro.arch.machine" in lines[2]
