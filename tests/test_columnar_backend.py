"""Columnar backend: bit-identity against the packed and reference loops.

The columnar walk batches pure events and defers their commit-cost
adds; everything here exists to pin the one contract that makes that
admissible: for any stream, any scheme, and any machine, the columnar
backend's stats are *bit-identical* to the packed loop's (which are in
turn golden-pinned against the reference loop).  The differential
matrix deliberately overlaps: catalog schemes on the golden config,
every workload profile, random traces against random scheme knobs,
checkpoint cut-and-resume, and the explicit fallback cases.
"""

import math
import random

import pytest

from repro.arch.checkpoint import CheckpointableRun, SimCheckpoint
from repro.arch.columnar import ColumnarTrace, _replay_adds
from repro.arch.config import machine_with_cache_levels, skylake_machine
from repro.arch.machine import BACKENDS, TimingSimulator, simulate
from repro.arch.scheme import Scheme
from repro.arch.trace import PackedTrace
from repro.schemes.catalog import baseline, capri, cwsp, ido, psp_ideal, replaycache
from repro.workloads.profiles import PROFILES
from repro.workloads.synthetic import SyntheticStream, generate_trace, prime_ranges

SCHEME_FACTORIES = {
    "baseline": baseline,
    "cwsp": cwsp,
    "capri": capri,
    "replaycache": replaycache,
    "ido": ido,
    "psp_ideal": psp_ideal,
}


def _stats(trace, machine, scheme, backend, prime=None):
    return simulate(trace, machine, scheme, prime=prime, backend=backend).to_dict()


# ----------------------------------------------------------------------
# The deferred-add replay: exactness of the batching primitive
# ----------------------------------------------------------------------
class TestReplayAdds:
    def _brute(self, x, c, n):
        for _ in range(n):
            x += c
        return x

    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_matches_sequential_adds(self, width):
        c = 1.0 / width
        cap = math.ldexp(c, 52)
        rng = random.Random(width)
        for _ in range(200):
            # Bias starts toward binade edges so crossings are common.
            exp = rng.randint(0, 40)
            x = math.ldexp(1.0, exp) * rng.uniform(0.5, 1.0)
            if rng.random() < 0.25:
                x = math.nextafter(math.ldexp(1.0, exp), math.inf)
            n = rng.randint(0, 3000)
            got, top = _replay_adds(x, c, n, cap)
            assert got == self._brute(x, c, n)
            if top:
                # The returned binade top licenses the caller's inline
                # fused add: verify it against a further batch.
                m = rng.randint(0, 50)
                if got + m * c < top:
                    assert got + m * c == self._brute(got, c, m)

    def test_from_zero(self):
        cap = math.ldexp(0.5, 52)
        got, _top = _replay_adds(0.0, 0.5, 7, cap)
        assert got == self._brute(0.0, 0.5, 7)

    def test_tiny_increment_falls_back(self):
        # c below the ulp of x: the cap forces literal replay.
        c = 0.25
        cap = math.ldexp(c, 52)
        x = math.ldexp(1.0, 55)
        got, top = _replay_adds(x, c, 100, cap)
        assert got == self._brute(x, c, 100)
        assert top == 0.0  # fast path disabled above the cap


# ----------------------------------------------------------------------
# Sidecar structure
# ----------------------------------------------------------------------
class TestColumnarTrace:
    def test_columns(self):
        trace = PackedTrace("lasbcfx", [64, 0, 128, 0, 8, 0, 72])
        col = ColumnarTrace(trace)
        assert col.n == 7
        assert col.rare_pos == [3, 5, 6]
        assert col.ls_pos == [0, 2, 4]
        assert col.ls_store == [False, True, True]
        lines, sets, tags = col.geometry(6, 7, 3)
        assert lines == [64 >> 6, 128 >> 6, 8 >> 6]
        assert sets == [line & 7 for line in lines]
        assert tags == [line >> 3 for line in lines]
        assert list(col.region_ids) == [0, 0, 0, 0, 1, 1, 1]
        assert list(col.mc_indices(2, 1)) == [(a >> 2) & 1 for a in (64, 128, 8)]

    def test_sidecar_cached_and_derived(self):
        trace = PackedTrace("ls", [8, 16])
        assert trace.columnar() is trace.columnar()
        # Unbuildable: address beyond int64 -> None, cached.
        wide = PackedTrace("l", [1 << 70])
        assert wide.columnar() is None
        assert wide.columnar() is None


# ----------------------------------------------------------------------
# Backend selection plumbing
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_backend_constants(self):
        assert BACKENDS == ("packed", "columnar", "reference")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            TimingSimulator(skylake_machine(scaled=True), cwsp(), backend="simd")

    def test_env_var_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "columnar")
        sim = TimingSimulator(skylake_machine(scaled=True), cwsp())
        assert sim.backend == "columnar"
        assert sim._columnar_run is not None

    def test_machine_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "columnar")
        machine = skylake_machine(scaled=True, backend="reference")
        assert TimingSimulator(machine, cwsp()).backend == "reference"

    def test_explicit_arg_beats_machine_config(self):
        machine = skylake_machine(scaled=True, backend="reference")
        sim = TimingSimulator(machine, cwsp(), backend="columnar")
        assert sim.backend == "columnar"

    def test_default_is_packed(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert TimingSimulator(skylake_machine(scaled=True), cwsp()).backend == (
            "packed"
        )


# ----------------------------------------------------------------------
# Differential identity: columnar == packed == reference
# ----------------------------------------------------------------------
class TestGoldenIdentity:
    """The golden config (astar, 4000 insts, seed 3) across the full
    scheme catalog, all three backends."""

    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    def test_catalog_schemes(self, scheme_name):
        factory = SCHEME_FACTORIES[scheme_name]
        machine = skylake_machine(scaled=True)
        profile = PROFILES["astar"]
        prime = prime_ranges(profile)
        trace = generate_trace(profile, 4_000, seed=3, instrument="pruned", packed=True)
        ref = _stats(trace, machine, factory(), "reference", prime)
        packed = _stats(trace, machine, factory(), "packed", prime)
        col = _stats(trace, machine, factory(), "columnar", prime)
        assert col == packed
        assert col == ref


class TestAllProfilesIdentity:
    """Every workload profile, packed vs columnar, two schemes with
    very different impure-event mixes."""

    @pytest.mark.parametrize("scheme_name", ["cwsp", "capri"])
    def test_profiles(self, scheme_name):
        factory = SCHEME_FACTORIES[scheme_name]
        machine = skylake_machine(scaled=True)
        for app, profile in PROFILES.items():
            trace = generate_trace(
                profile, 1_500, seed=11, instrument="pruned", packed=True
            )
            packed = _stats(trace, machine, factory(), "packed")
            col = _stats(trace, machine, factory(), "columnar")
            assert col == packed, app


def _random_trace(rng, n):
    codes = []
    addrs = []
    span = 1 << 22
    for _ in range(n):
        r = rng.random()
        if r < 0.45:
            codes.append("a")
            addrs.append(0)
        elif r < 0.70:
            codes.append("l")
            addrs.append(rng.randrange(0, span, 8))
        elif r < 0.90:
            codes.append(rng.choice("ssc"))
            addrs.append(rng.randrange(0, span, 8))
        elif r < 0.96:
            codes.append("b")
            addrs.append(0)
        elif r < 0.98:
            codes.append("f")
            addrs.append(0)
        else:
            codes.append("x")
            addrs.append(rng.randrange(0, span, 8))
    return PackedTrace("".join(codes), addrs)


def _random_scheme(rng):
    return Scheme(
        name="fuzz",
        persist_stores=rng.random() < 0.8,
        persist_bytes=rng.choice([8, 64]),
        nvm_write_amp=rng.choice([1.0, 2.0, 8.0]),
        stall_at_boundary=rng.random() < 0.3,
        mc_speculation=rng.random() < 0.7,
        wb_delay=rng.random() < 0.5,
        wpq_load_delay=rng.random() < 0.5,
        extra_insts_per_store=rng.choice([0, 0, 1, 2]),
        extra_insts_per_region=rng.choice([0, 4]),
        ckpt_stores_per_region=rng.choice([0.0, 2.0]),
        coalesce_lines=rng.random() < 0.4,
    )


class TestRandomizedIdentity:
    """Seeded random traces x random scheme knobs x machine variants.

    This is the matrix that catches precondition mistakes the curated
    configs cannot: every combination of persist/coalesce/overhead
    knobs against streams with atomics, fences, and dense boundaries.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_random_trace_random_scheme(self, seed):
        rng = random.Random(1000 + seed)
        trace = _random_trace(rng, 800)
        scheme = _random_scheme(rng)
        machine = skylake_machine(
            scaled=True, commit_width=rng.choice([1, 2, 4])
        )
        ref = _stats(trace, machine, scheme, "reference")
        packed = _stats(trace, machine, scheme, "packed")
        col = _stats(trace, machine, scheme, "columnar")
        assert col == packed
        assert col == ref

    def test_boundary_and_fence_heavy_stream(self):
        # Adjacent rare events, rare event first/last, empty pure runs.
        trace = PackedTrace(
            "bflsbbxcafb", [0, 0, 8, 16, 0, 0, 24, 32, 0, 0, 0]
        )
        machine = skylake_machine(scaled=True)
        for factory in (cwsp, capri, baseline):
            packed = _stats(trace, machine, factory(), "packed")
            col = _stats(trace, machine, factory(), "columnar")
            assert col == packed

    def test_empty_trace(self):
        trace = PackedTrace("", [])
        machine = skylake_machine(scaled=True)
        assert _stats(trace, machine, cwsp(), "columnar") == _stats(
            trace, machine, cwsp(), "packed"
        )


# ----------------------------------------------------------------------
# Fallbacks: the vector path must never be required for correctness
# ----------------------------------------------------------------------
class TestFallbacks:
    def test_non_power_of_two_commit_width(self):
        machine = skylake_machine(scaled=True, commit_width=3)
        sim = TimingSimulator(machine, cwsp(), backend="columnar")
        assert sim._columnar_run is None  # gate closed, silent degrade
        profile = PROFILES["astar"]
        trace = generate_trace(profile, 2_000, seed=7, instrument="pruned", packed=True)
        assert _stats(trace, machine, cwsp(), "columnar") == _stats(
            trace, machine, cwsp(), "packed"
        )

    def test_nonconforming_hierarchy(self):
        # 3 SRAM levels: outside the packed fast path entirely; the
        # columnar backend degrades all the way to the reference loop.
        machine = machine_with_cache_levels(3)
        profile = PROFILES["astar"]
        trace = generate_trace(profile, 2_000, seed=7, instrument="pruned", packed=True)
        assert _stats(trace, machine, cwsp(), "columnar") == _stats(
            trace, machine, cwsp(), "reference"
        )

    def test_unbuildable_sidecar_falls_back_to_packed(self):
        # Addresses beyond int64: ColumnarTrace raises OverflowError,
        # columnar() caches None, run_columnar delegates to the packed
        # loop mid-flight.
        trace = PackedTrace("lsalsb", [1 << 70, 8, 0, 16, 1 << 70, 0])
        machine = skylake_machine(scaled=True)
        assert trace.columnar() is None
        assert _stats(trace, machine, cwsp(), "columnar") == _stats(
            trace, machine, cwsp(), "packed"
        )


# ----------------------------------------------------------------------
# Checkpoint cut-and-resume under the columnar backend
# ----------------------------------------------------------------------
class TestCheckpointIdentity:
    def _stream(self):
        return SyntheticStream(PROFILES["astar"], 6_000, seed=4, instrument="pruned")

    def _uninterrupted(self, machine):
        run = CheckpointableRun(
            machine, cwsp(), stream=self._stream(),
            prime=tuple(prime_ranges(PROFILES["astar"])),
        )
        return run.run_to_end()

    def _cut_and_resume(self, cut_machine, resume_machine, cut_at=2_500):
        run = CheckpointableRun(
            cut_machine, cwsp(), stream=self._stream(),
            prime=tuple(prime_ranges(PROFILES["astar"])),
        )
        run.run_for_events(cut_at)
        blob = run.checkpoint().to_json()
        resumed = CheckpointableRun.resume(
            SimCheckpoint.from_json(blob), resume_machine, cwsp()
        )
        return resumed.run_to_end()

    def test_columnar_cut_resume_matches_uninterrupted(self):
        machine = skylake_machine(scaled=True, backend="columnar")
        direct = self._uninterrupted(machine)
        resumed = self._cut_and_resume(machine, machine)
        assert resumed.to_dict() == direct.to_dict()

    def test_cross_backend_resume(self):
        # backend is excluded from the checkpoint's config digest: a
        # checkpoint cut under columnar resumes under packed (and the
        # other way around) with identical stats.
        packed_m = skylake_machine(scaled=True)
        col_m = skylake_machine(scaled=True, backend="columnar")
        direct = self._uninterrupted(packed_m)
        assert self._cut_and_resume(col_m, packed_m).to_dict() == direct.to_dict()
        assert self._cut_and_resume(packed_m, col_m).to_dict() == direct.to_dict()
