"""Checkpoint insertion and Penny pruning tests."""

import pytest

from repro.compiler import (
    CompileOptions,
    compile_module,
    insert_checkpoints,
    insert_initial_boundaries,
    cut_antidependences,
)
from repro.ir.builder import IRBuilder
from repro.ir.function import Module
from repro.ir.instructions import Boundary, Checkpoint
from repro.ir.interpreter import Memory
from repro.ir.values import Reg


def ckpts_of(fn):
    return [i for _, i in fn.instructions() if isinstance(i, Checkpoint)]


def build_cross_boundary():
    """x defined before a manual boundary, used after it."""
    b = IRBuilder(Module("m"))
    fn = b.function("main", [])
    p = b.alloca(8, Reg("p"))
    x = b.load(Reg("p"), 0, Reg("x"))
    b.boundary("manual")
    b.out(Reg("x"))
    b.ret()
    return b.module, fn


class TestInsertion:
    def test_cross_boundary_def_checkpointed(self):
        module, fn = build_cross_boundary()
        n = insert_checkpoints(fn)
        regs = {c.reg for c in ckpts_of(fn)}
        assert Reg("x") in regs
        # ckpt goes right after the defining load
        idx = next(
            i for i, ins in enumerate(fn.entry.instrs) if ins.dest() is Reg("x")
        )
        assert isinstance(fn.entry.instrs[idx + 1], Checkpoint)

    def test_value_dead_at_boundary_not_checkpointed(self):
        b = IRBuilder(Module("m"))
        fn = b.function("main", [])
        x = b.const(1, Reg("x"))
        b.out(Reg("x"))  # last use before the boundary
        b.boundary("manual")
        b.ret()
        insert_checkpoints(fn)
        assert ckpts_of(fn) == []

    def test_redefined_before_boundary_not_checkpointed(self):
        b = IRBuilder(Module("m"))
        fn = b.function("main", [])
        b.const(1, Reg("x"))
        b.const(2, Reg("x"))  # first def never crosses the boundary
        b.boundary("manual")
        b.out(Reg("x"))
        b.ret()
        insert_checkpoints(fn)
        cks = ckpts_of(fn)
        assert len(cks) == 1  # only the second definition

    def test_loop_carried_def_checkpointed(self, rmw_loop):
        fn = rmw_loop.get("main")
        insert_initial_boundaries(fn)
        cut_antidependences(fn)
        insert_checkpoints(fn)
        regs = {c.reg for c in ckpts_of(fn)}
        assert Reg("i") in regs

    def test_call_result_checkpointed_before_post_call_boundary(self, call_chain):
        fn = call_chain.get("main")
        insert_initial_boundaries(fn)
        insert_checkpoints(fn)
        instrs = fn.entry.instrs
        for i, ins in enumerate(instrs):
            if isinstance(ins, Checkpoint) and ins.reg is Reg("r"):
                assert isinstance(instrs[i + 1], Boundary)
                assert instrs[i + 1].kind == "post_call"
                return
        pytest.fail("call result not checkpointed")


class TestPruning:
    def test_const_checkpoint_pruned(self):
        b = IRBuilder(Module("m"))
        b.function("main", [])
        b.const(7, Reg("k"))
        b.boundary("manual")
        b.out(Reg("k"))
        b.ret()
        report = compile_module(b.module, CompileOptions())
        fr = report.functions["main"]
        assert fr.ckpts_pruned >= 1
        # the recovery slice rematerializes k from the immediate
        rs = next(
            s for (f, _), s in b.module.recovery_slices.items()
            if f == "main" and Reg("k") in s.live_in
        )
        assert ("const", Reg("k"), 7) in s_ops(rs)

    def test_load_checkpoint_kept(self):
        b = IRBuilder(Module("m"))
        b.function("main", [])
        p = b.alloca(8, Reg("p"))
        b.load(Reg("p"), 0, Reg("x"))
        b.boundary("manual")
        b.out(Reg("x"))
        b.ret()
        report = compile_module(b.module)
        fn = b.module.get("main")
        assert any(c.reg is Reg("x") for c in ckpts_of(fn))

    def test_derived_value_rebuilt_from_kept_checkpoint(self):
        # Figure 4(b): r3 = ckpt'd load-ish value; derived shift pruned.
        b = IRBuilder(Module("m"))
        b.function("main", [])
        p = b.alloca(8, Reg("p"))
        b.load(Reg("p"), 0, Reg("r4"))
        b.boundary("manual")
        r3 = b.shl(Reg("r4"), 2, Reg("r3"))
        b.boundary("manual")
        b.out(Reg("r3"))
        b.out(Reg("r4"))
        b.ret()
        compile_module(b.module)
        fn = b.module.get("main")
        regs = {c.reg for c in ckpts_of(fn)}
        assert Reg("r4") in regs      # load: must be kept
        assert Reg("r3") not in regs  # shift: rebuilt by the RS
        rs = next(
            s for (f, _), s in b.module.recovery_slices.items()
            if Reg("r3") in s.live_in
        )
        ops = s_ops(rs)
        assert ("restore", Reg("r4")) in ops
        assert any(op[0] == "binop" and op[1] == "shl" for op in ops)

    def test_pruning_disabled_keeps_everything(self):
        b = IRBuilder(Module("m"))
        b.function("main", [])
        b.const(7, Reg("k"))
        b.boundary("manual")
        b.out(Reg("k"))
        b.ret()
        report = compile_module(b.module, CompileOptions(pruning=False))
        assert report.functions["main"].ckpts_pruned == 0
        assert report.functions["main"].ckpts_kept == 1

    def test_multi_def_registers_keep_all_checkpoints(self):
        b = IRBuilder(Module("m"))
        b.function("main", ["c"])
        t = b.add_block("t")
        f = b.add_block("f")
        j = b.add_block("j")
        b.cbr(Reg("c"), t, f)
        b.set_block(t)
        b.const(1, Reg("x"))
        b.br(j)
        b.set_block(f)
        b.const(2, Reg("x"))
        b.br(j)
        b.set_block(j)
        b.boundary("manual")
        b.out(Reg("x"))
        b.ret()
        compile_module(b.module)
        fn = b.module.get("main")
        # two defs reach the boundary: neither checkpoint is prunable
        assert sum(1 for c in ckpts_of(fn) if c.reg is Reg("x")) == 2

    def test_recovery_slices_cover_every_boundary(self, rmw_loop):
        compile_module(rmw_loop)
        fn = rmw_loop.get("main")
        from repro.analysis.cfg import CFG

        reachable = set(CFG(fn).reachable())
        for name, block in fn.blocks.items():
            if name not in reachable:
                continue
            for instr in block.instrs:
                if isinstance(instr, Boundary):
                    assert ("main", instr.uid) in rmw_loop.recovery_slices

    def test_slice_execution_restores_from_slots(self):
        b = IRBuilder(Module("m"))
        b.function("main", [])
        p = b.alloca(8, Reg("p"))
        b.load(Reg("p"), 0, Reg("x"))
        b.boundary("manual")
        b.out(Reg("x"))
        b.ret()
        compile_module(b.module)
        rs = next(
            s for (f, _), s in b.module.recovery_slices.items()
            if Reg("x") in s.live_in
        )
        from repro.ir.interpreter import CKPT_BASE

        mem = Memory()
        slot = b.module.ckpt_slots[("main", "x")]
        mem.store(CKPT_BASE + slot * 8, 12345)
        restored = rs.execute(b.module, mem)
        assert restored[Reg("x")] == 12345


def s_ops(rs):
    return list(rs.ops)
