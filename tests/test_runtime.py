"""IR libc and syscall-layer tests: functional, compiled, recoverable."""

import pytest

from repro.compiler import compile_module
from repro.ir.builder import IRBuilder
from repro.ir.function import Module
from repro.ir.interpreter import Interpreter
from repro.ir.values import Reg
from repro.recovery import check_crash_consistency
from repro.runtime.libc import BRK_VAR, HEAP_START, add_libc
from repro.runtime.syscalls import KIN_QUEUE, PID, add_syscall_layer


def run_main(module, build, compiled=False, args=()):
    b = IRBuilder(module)
    b.function("main", [])
    build(b)
    if compiled:
        compile_module(module)
    state, _ = Interpreter(module, spill_args=compiled).run_trace("main", args)
    return state


class TestLibc:
    @pytest.mark.parametrize("compiled", [False, True])
    def test_sbrk_sequence(self, compiled):
        module = add_libc(Module("m"))

        def build(b):
            p1 = b.call("sbrk", [16], rd=Reg("p1"))
            p2 = b.call("sbrk", [24], rd=Reg("p2"))
            b.out(Reg("p1"))
            b.out(b.sub(Reg("p2"), Reg("p1")))
            b.ret()

        state = run_main(module, build, compiled)
        assert state.output == [HEAP_START, 16]

    @pytest.mark.parametrize("compiled", [False, True])
    def test_malloc_distinct_blocks(self, compiled):
        module = add_libc(Module("m"))

        def build(b):
            p1 = b.call("malloc", [32], rd=Reg("p1"))
            p2 = b.call("malloc", [32], rd=Reg("p2"))
            b.store(1, Reg("p1"))
            b.store(2, Reg("p2"))
            b.out(b.load(Reg("p1")))
            b.out(b.load(Reg("p2")))
            b.ret()

        state = run_main(module, build, compiled)
        assert state.output == [1, 2]

    def test_free_then_malloc_reuses_block(self):
        module = add_libc(Module("m"))

        def build(b):
            p1 = b.call("malloc", [32], rd=Reg("p1"))
            b.call("free", [Reg("p1"), 32], void=True)
            p2 = b.call("malloc", [32], rd=Reg("p2"))
            same = b.cmp("eq", Reg("p1"), Reg("p2"))
            b.out(same)
            b.ret()

        assert run_main(module, build).output == [1]

    def test_free_list_is_per_size_class(self):
        module = add_libc(Module("m"))

        def build(b):
            p1 = b.call("malloc", [16], rd=Reg("p1"))
            b.call("free", [Reg("p1"), 16], void=True)
            p2 = b.call("malloc", [64], rd=Reg("p2"))  # different class
            same = b.cmp("eq", Reg("p1"), Reg("p2"))
            b.out(same)
            b.ret()

        assert run_main(module, build).output == [0]

    def test_malloc_min_size(self):
        module = add_libc(Module("m"))

        def build(b):
            p1 = b.call("malloc", [1], rd=Reg("p1"))
            p2 = b.call("malloc", [1], rd=Reg("p2"))
            b.out(b.sub(Reg("p2"), Reg("p1")))
            b.ret()

        assert run_main(module, build).output == [8]

    def test_memcpy(self):
        module = add_libc(Module("m"))

        def build(b):
            src = b.call("malloc", [24], rd=Reg("src"))
            dst = b.call("malloc", [24], rd=Reg("dst"))
            b.store(11, Reg("src"), 0)
            b.store(22, Reg("src"), 8)
            b.store(33, Reg("src"), 16)
            b.call("memcpy", [Reg("dst"), Reg("src"), 3], void=True)
            b.out(b.load(Reg("dst"), 0))
            b.out(b.load(Reg("dst"), 8))
            b.out(b.load(Reg("dst"), 16))
            b.ret()

        assert run_main(module, build).output == [11, 22, 33]

    def test_memset_and_calloc(self):
        module = add_libc(Module("m"))

        def build(b):
            p = b.call("malloc", [16], rd=Reg("p"))
            b.store(99, Reg("p"))
            b.call("free", [Reg("p"), 16], void=True)
            q = b.call("calloc", [16], rd=Reg("q"))  # reuses p, zeroed
            b.out(b.load(Reg("q")))
            b.ret()

        assert run_main(module, build).output == [0]

    def test_brk_state_lives_in_nvm(self):
        module = add_libc(Module("m"))

        def build(b):
            b.call("sbrk", [8], void=True)
            brk = b.load(b.const(BRK_VAR))
            b.out(brk)
            b.ret()

        assert run_main(module, build).output == [HEAP_START + 8]

    def test_allocator_crash_consistent(self):
        module = add_libc(Module("m"))
        b = IRBuilder(module)
        b.function("main", [])
        p1 = b.call("malloc", [16], rd=Reg("p1"))
        b.store(7, Reg("p1"))
        b.call("free", [Reg("p1"), 16], void=True)
        p2 = b.call("malloc", [16], rd=Reg("p2"))
        b.store(9, Reg("p2"))
        b.out(b.load(Reg("p2")))
        b.ret()
        compile_module(module)
        report = check_crash_consistency(module, stride=5)
        assert report.ok, report.divergences[:3]


class TestSyscalls:
    def build_echo(self):
        module = add_syscall_layer(Module("m"))
        b = IRBuilder(module)
        b.function("main", [])
        kin = b.const(KIN_QUEUE, Reg("kin"))
        b.store(77, Reg("kin"), 16)  # slot 0
        b.store(1, Reg("kin"), 8)    # tail = 1
        got = b.call("entry_syscall", [0, 0], rd=Reg("got"))
        b.out(Reg("got"))
        n = b.call("entry_syscall", [1, 123], rd=Reg("n"))
        b.out(Reg("n"))
        pid = b.call("entry_syscall", [39, 0], rd=Reg("pid"))
        b.out(Reg("pid"))
        bad = b.call("entry_syscall", [99, 0], rd=Reg("bad"))
        b.out(Reg("bad"))
        b.ret()
        return module

    def test_dispatch_semantics(self):
        module = self.build_echo()
        state, _ = Interpreter(module).run_trace()
        assert state.output == [77, 1, PID, -38]

    def test_compiled_dispatch_identical(self):
        module = self.build_echo()
        compile_module(module)
        state, _ = Interpreter(module, spill_args=True).run_trace()
        assert state.output == [77, 1, PID, -38]

    def test_entry_has_manual_boundaries(self):
        from repro.ir.instructions import Boundary

        module = add_syscall_layer(Module("m"))
        entry = module.get("entry_syscall")
        manual = [
            i for _, i in entry.instructions()
            if isinstance(i, Boundary) and i.kind == "manual"
        ]
        assert len(manual) == 3  # entry, pre-dispatch, exit (Figure 11)

    def test_read_empty_queue_returns_minus_one(self):
        module = add_syscall_layer(Module("m"))
        b = IRBuilder(module)
        b.function("main", [])
        got = b.call("entry_syscall", [0, 0], rd=Reg("got"))
        b.out(Reg("got"))
        b.ret()
        state, _ = Interpreter(module).run_trace()
        assert state.output == [-1]

    def test_sys_brk_routes_to_sbrk(self):
        module = add_syscall_layer(Module("m"))
        b = IRBuilder(module)
        b.function("main", [])
        p = b.call("entry_syscall", [12, 16], rd=Reg("p"))
        b.out(Reg("p"))
        b.ret()
        state, _ = Interpreter(module).run_trace()
        assert state.output == [HEAP_START]

    def test_syscall_path_crash_consistent(self):
        module = self.build_echo()
        compile_module(module)
        report = check_crash_consistency(module, stride=9)
        assert report.ok, report.divergences[:3]
