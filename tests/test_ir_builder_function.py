"""Builder conveniences and Function/Module container APIs."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import BinOp, Const, Ret
from repro.ir.interpreter import Interpreter
from repro.ir.values import Imm, Reg


class TestBuilder:
    def test_fresh_registers_unique(self):
        b = IRBuilder()
        names = {b.fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_emit_requires_insertion_point(self):
        b = IRBuilder()
        with pytest.raises(AssertionError):
            b.const(1)

    def test_int_operands_coerced(self):
        b = IRBuilder()
        b.function("f", [])
        r = b.add(1, 2)
        instr = b.module.get("f").entry.instrs[0]
        assert isinstance(instr, BinOp)
        assert instr.lhs == Imm(1) and instr.rhs == Imm(2)

    def test_set_block_by_name(self):
        b = IRBuilder()
        b.function("f", [])
        b.add_block("other")
        blk = b.set_block("other")
        assert isinstance(blk, BasicBlock) and blk.name == "other"

    def test_named_destination(self):
        b = IRBuilder()
        b.function("f", [])
        r = b.const(5, Reg("answer"))
        assert r is Reg("answer")

    def test_void_call_returns_none(self):
        b = IRBuilder()
        b.function("f", [])
        assert b.call("sbrk", [8], void=True) is None

    def test_helpers_cover_all_ops(self):
        b = IRBuilder()
        b.function("f", [])
        x = b.const(8)
        for helper in (b.add, b.sub, b.mul, b.sdiv, b.srem, b.and_, b.or_, b.xor, b.shl, b.lshr):
            helper(x, 2)
        b.ret()
        assert b.module.get("f").instr_count() == 12

    def test_branch_accepts_block_objects(self):
        b = IRBuilder()
        b.function("f", [])
        target = b.add_block("t")
        b.br(target)
        b.set_block(target)
        b.ret()
        state, _ = Interpreter(b.module).run_trace("f")
        assert state.steps >= 2


class TestFunctionAPI:
    def test_entry_is_first_block(self):
        fn = Function("f")
        fn.add_block("a")
        fn.add_block("b")
        assert fn.entry.name == "a"

    def test_entry_of_empty_function_raises(self):
        with pytest.raises(ValueError):
            Function("f").entry

    def test_uids_monotone(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        i1 = fn.add_instr(blk, Const(Reg("a"), 1))
        i2 = fn.add_instr(blk, Ret(None))
        assert i2.uid == i1.uid + 1

    def test_insert_at_index(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        fn.add_instr(blk, Ret(None))
        fn.add_instr(blk, Const(Reg("a"), 1), index=0)
        assert isinstance(blk.instrs[0], Const)

    def test_find_instr(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        instr = fn.add_instr(blk, Ret(None))
        found_blk, idx = fn.find_instr(instr.uid)
        assert found_blk is blk and idx == 0

    def test_find_missing_instr_raises(self):
        fn = Function("f")
        fn.add_block("entry")
        with pytest.raises(KeyError):
            fn.find_instr(999)

    def test_instructions_iterates_in_layout_order(self):
        fn = Function("f")
        a = fn.add_block("a")
        b = fn.add_block("b")
        fn.add_instr(a, Const(Reg("x"), 1))
        fn.add_instr(b, Ret(None))
        pairs = list(fn.instructions())
        assert [blk.name for blk, _ in pairs] == ["a", "b"]


class TestModuleAPI:
    def test_get_missing_function_raises(self):
        with pytest.raises(KeyError, match="no function"):
            Module("m").get("nope")

    def test_ckpt_slots_stable(self):
        m = Module("m")
        s1 = m.ckpt_slot("f", Reg("x"))
        s2 = m.ckpt_slot("f", Reg("x"))
        s3 = m.ckpt_slot("f", Reg("y"))
        assert s1 == s2 != s3

    def test_ckpt_slots_per_function(self):
        m = Module("m")
        assert m.ckpt_slot("f", Reg("x")) != m.ckpt_slot("g", Reg("x"))
