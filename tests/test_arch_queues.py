"""CompletionQueue semantics: FIFO, capacity, occupancy integral."""

import pytest

from repro.arch.queues import CompletionQueue


class TestAdvance:
    def test_pops_completed_entries(self):
        q = CompletionQueue(4)
        q.push(10.0)
        q.push(20.0)
        q.advance(15.0)
        assert q.occupancy() == 1

    def test_keeps_pending_entries(self):
        q = CompletionQueue(4)
        q.push(10.0)
        q.advance(5.0)
        assert q.occupancy() == 1

    def test_occupancy_integral_exact(self):
        q = CompletionQueue(4)
        q.push(10.0)  # occupied [0, 10)
        q.advance(20.0)
        assert q.occ_integral == pytest.approx(10.0)
        assert q.mean_occupancy(20.0) == pytest.approx(0.5)

    def test_integral_with_overlap(self):
        q = CompletionQueue(4)
        q.push(10.0)
        q.push(10.0)  # two entries until t=10
        q.advance(10.0)
        assert q.occ_integral == pytest.approx(20.0)

    def test_zero_window_mean_occupancy_is_zero(self):
        """A zero-cycle run reads 0.0, matching SimStats.ipc's guard.

        Both derived metrics use the same truthiness test on the
        denominator, so an empty simulation reports consistent zeros
        instead of one metric raising ZeroDivisionError.
        """
        q = CompletionQueue(4)
        assert q.mean_occupancy(0.0) == 0.0
        q.push(0.0)  # an entry completing exactly at t=0
        assert q.mean_occupancy(0.0) == 0.0

    def test_zero_cycle_stats_consistent_with_ipc(self):
        from repro.arch.config import skylake_machine
        from repro.arch.machine import simulate
        from repro.schemes.catalog import cwsp

        stats = simulate([], skylake_machine(scaled=True), cwsp())
        assert stats.cycles == 0
        assert stats.ipc == 0.0


class TestAdmit:
    def test_admit_when_space(self):
        q = CompletionQueue(2)
        assert q.admit(5.0) == 5.0

    def test_admit_stalls_until_head_completes(self):
        q = CompletionQueue(2)
        q.push(10.0)
        q.push(12.0)
        t = q.admit(3.0)
        assert t == 10.0
        assert q.full_stalls == 1

    def test_admit_pops_finished_first(self):
        q = CompletionQueue(2)
        q.push(1.0)
        q.push(2.0)
        t = q.admit(5.0)  # both already done by t=5
        assert t == 5.0
        assert q.full_stalls == 0


class TestFIFOOrder:
    def test_push_clamps_to_fifo_completion(self):
        q = CompletionQueue(4)
        q.push(10.0)
        q.push(5.0)  # completes no earlier than its predecessor
        q.advance(7.0)
        assert q.occupancy() == 2

    def test_head_completion(self):
        q = CompletionQueue(4)
        assert q.head_completion() == 0.0
        q.push(3.0)
        assert q.head_completion() == 3.0
