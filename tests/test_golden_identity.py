"""Golden value-identity: the optimized simulator must not drift.

The hot-loop optimizations (local binding, packed traces, ring-buffer
queues) are only admissible when they are *value-identical*: the same
seed and config must produce byte-identical ``SimStats.to_dict()``
output before and after.  This suite pins that contract against a
committed golden JSON covering every scheme in
:mod:`repro.schemes.catalog` (the named schemes and the Figure 15
ablation ladder) plus one multi-core run.

Regenerate after an *intentional* model change with::

    PYTHONPATH=src python tests/test_golden_identity.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.arch.config import skylake_machine
from repro.arch.machine import simulate
from repro.arch.multicore import simulate_multicore
from repro.schemes.catalog import (
    ablation_ladder,
    baseline,
    capri,
    cwsp,
    ido,
    psp_ideal,
    replaycache,
)
from repro.workloads.profiles import PROFILES
from repro.workloads.synthetic import generate_trace, prime_ranges

GOLDEN_PATH = Path(__file__).parent / "golden" / "sim_golden.json"

APP = "astar"
N_INSTS = 4000
SEED = 3


def _named_schemes():
    """Every scheme the catalog defines, with its trace instrumentation."""
    cases = [(f"scheme:{f().name}", f(), "pruned") for f in
             (baseline, cwsp, capri, replaycache, ido, psp_ideal)]
    for _stage, scheme, trace_kwargs in ablation_ladder():
        cases.append((f"ladder:{scheme.name}", scheme, trace_kwargs["ckpts"]))
    return cases


def compute_golden():
    """Simulate every catalog scheme over a fixed-seed trace."""
    machine = skylake_machine(scaled=True)
    profile = PROFILES[APP]
    prime = prime_ranges(profile)
    traces = {}
    out = {}
    for case_id, scheme, instrument in _named_schemes():
        if instrument not in traces:
            traces[instrument] = generate_trace(
                profile, N_INSTS, seed=SEED, instrument=instrument
            )
        stats = simulate(traces[instrument], machine, scheme, prime=prime)
        out[case_id] = stats.to_dict()
    mc_profiles = [PROFILES[a] for a in (APP, "bzip2")]
    mc_traces = [
        generate_trace(p, N_INSTS, seed=SEED + i, instrument="pruned")
        for i, p in enumerate(mc_profiles)
    ]
    mc_prime = [r for p in mc_profiles for r in prime_ranges(p)]
    mstats = simulate_multicore(mc_traces, machine, cwsp(), prime=mc_prime)
    out["multicore:cwsp"] = mstats.merged().to_dict()
    return out


def canonical(data) -> str:
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


@pytest.fixture(scope="module")
def computed():
    return compute_golden()


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; regenerate with "
        "PYTHONPATH=src python tests/test_golden_identity.py --regen"
    )
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_covers_every_catalog_scheme(golden):
    expected = {case_id for case_id, _, _ in _named_schemes()} | {"multicore:cwsp"}
    assert set(golden) == expected


@pytest.mark.parametrize(
    "case_id", [c for c, _, _ in _named_schemes()] + ["multicore:cwsp"]
)
def test_value_identical_to_golden(case_id, computed, golden):
    assert canonical(computed[case_id]) == canonical(golden[case_id]), (
        f"{case_id}: simulator output drifted from the committed golden; "
        "if the model change is intentional, regenerate the golden "
        "(see module docstring)"
    )


def test_byte_identical_serialization(computed, golden):
    """The whole document must match byte-for-byte, not just per-case."""
    assert canonical(computed) == canonical(golden)


def test_multicore_fused_loop_matches_golden(golden):
    """The fused multicore scheduling loop (packed traces) must
    reproduce the committed multicore golden -- which pins the
    reference min-clock stepper's output -- bit-for-bit."""
    machine = skylake_machine(scaled=True)
    mc_profiles = [PROFILES[a] for a in (APP, "bzip2")]
    mc_traces = [
        generate_trace(p, N_INSTS, seed=SEED + i, instrument="pruned", packed=True)
        for i, p in enumerate(mc_profiles)
    ]
    mc_prime = [r for p in mc_profiles for r in prime_ranges(p)]
    mstats = simulate_multicore(mc_traces, machine, cwsp(), prime=mc_prime)
    assert canonical(mstats.merged().to_dict()) == canonical(golden["multicore:cwsp"])


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("usage: python tests/test_golden_identity.py --regen")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(canonical(compute_golden()))
    print(f"wrote {GOLDEN_PATH}")
