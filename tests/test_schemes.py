"""Scheme catalog facts and the ablation ladder structure."""

from repro.schemes import (
    ablation_ladder,
    baseline,
    capri,
    cwsp,
    ido,
    psp_ideal,
    replaycache,
)


class TestCatalog:
    def test_baseline_has_no_persistence(self):
        s = baseline()
        assert not s.persist_stores
        assert s.dram_cache_enabled

    def test_cwsp_eight_byte_granularity(self):
        s = cwsp()
        assert s.persist_bytes == 8
        assert s.mc_speculation
        assert not s.stall_at_boundary
        assert s.wb_delay and s.wpq_load_delay

    def test_cwsp_without_speculation_stalls(self):
        s = cwsp(mc_speculation=False)
        assert s.stall_at_boundary

    def test_capri_cacheline_granularity(self):
        s = capri()
        assert s.persist_bytes == 64
        assert s.coalesce_lines
        assert not s.stall_at_boundary  # battery-backed redo buffer
        assert s.pb_entries_override == 288  # 18KB / 64B

    def test_capri_path_demand_is_8x_cwsp(self):
        assert capri().persist_bytes == 8 * cwsp().persist_bytes

    def test_replaycache_is_software_heavy(self):
        s = replaycache()
        assert s.extra_insts_per_store > 0
        assert s.stall_at_boundary

    def test_ido_uses_persist_barriers(self):
        s = ido()
        assert s.stall_at_boundary
        assert not s.mc_speculation

    def test_psp_disables_dram_cache(self):
        s = psp_ideal()
        assert not s.dram_cache_enabled
        assert not s.persist_stores


class TestAblationLadder:
    def test_six_stages(self):
        assert len(ablation_ladder()) == 6

    def test_stage_names(self):
        names = [name for name, _, _ in ablation_ladder()]
        assert names == [
            "+Region Formation",
            "+Persist Path",
            "+MC Speculation",
            "+WB Delaying",
            "+WPQ Delaying",
            "+Pruning (cWSP)",
        ]

    def test_cumulative_feature_enablement(self):
        ladder = {name: s for name, s, _ in ablation_ladder()}
        assert not ladder["+Region Formation"].persist_stores
        assert ladder["+Persist Path"].persist_stores
        assert not ladder["+Persist Path"].mc_speculation
        assert ladder["+MC Speculation"].mc_speculation
        assert not ladder["+MC Speculation"].wb_delay
        assert ladder["+WB Delaying"].wb_delay
        assert not ladder["+WB Delaying"].wpq_load_delay
        assert ladder["+WPQ Delaying"].wpq_load_delay

    def test_only_final_stage_uses_pruned_traces(self):
        ladder = ablation_ladder()
        for name, _, tk in ladder[:-1]:
            assert tk["ckpts"] == "unpruned", name
        assert ladder[-1][2]["ckpts"] == "pruned"

    def test_final_stage_is_full_cwsp(self):
        final = ablation_ladder()[-1][1]
        full = cwsp()
        assert final.persist_stores == full.persist_stores
        assert final.mc_speculation == full.mc_speculation
        assert final.wb_delay == full.wb_delay
        assert final.wpq_load_delay == full.wpq_load_delay
