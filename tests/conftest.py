"""Shared fixtures: small programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.function import Module
from repro.ir.values import Reg


def build_rmw_loop(n: int = 10, base: int = 0x0800_0000) -> Module:
    """A loop with a read-modify-write on an array (Figure 4's shape)."""
    b = IRBuilder(Module("rmw_loop"))
    b.function("main", [])
    b.const(base, Reg("base"))
    b.const(n, Reg("n"))
    b.const(0, Reg("i"))
    loop = b.add_block("loop")
    body = b.add_block("body")
    done = b.add_block("done")
    b.br(loop)
    b.set_block(loop)
    c = b.cmp("slt", Reg("i"), Reg("n"))
    b.cbr(c, body, done)
    b.set_block(body)
    slot = b.and_(Reg("i"), 3)
    off = b.shl(slot, 3)
    addr = b.add(Reg("base"), off)
    v = b.load(addr)
    v2 = b.add(v, 5)
    b.store(v2, addr)
    b.add(Reg("i"), 1, Reg("i"))
    b.br(loop)
    b.set_block(done)
    s = b.load(Reg("base"))
    b.out(s)
    b.ret(s)
    return b.module


def build_straightline() -> Module:
    """Straight-line stores and loads with a WAR pair."""
    b = IRBuilder(Module("straight"))
    b.function("main", [])
    p = b.alloca(32)
    b.store(1, p, 0)
    b.store(2, p, 8)
    x = b.load(p, 0)
    y = b.load(p, 8)
    s = b.add(x, y)
    b.store(s, p, 0)  # WAR with the load of p+0
    z = b.load(p, 0)
    b.out(z)
    b.ret(z)
    return b.module


def build_call_chain() -> Module:
    """main -> double -> ret, exercising arg spills and call boundaries."""
    b = IRBuilder(Module("calls"))
    b.function("double", ["x"])
    r = b.mul(Reg("x"), 2)
    b.ret(r)
    b.function("main", [])
    a = b.const(21)
    r = b.call("double", [a], rd=Reg("r"))
    b.out(Reg("r"))
    b.ret(Reg("r"))
    return b.module


@pytest.fixture
def rmw_loop() -> Module:
    return build_rmw_loop()


@pytest.fixture
def straightline() -> Module:
    return build_straightline()


@pytest.fixture
def call_chain() -> Module:
    return build_call_chain()
